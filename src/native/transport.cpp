#include "native/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>

#include "proto/delivery.hpp"
#include "support/check.hpp"

namespace pods::native {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration micros(double us) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::micro>(us));
}

void put16(std::uint8_t* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
void put64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint16_t get16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
std::uint64_t get64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Datagram type bytes (first byte of every UDP packet).
constexpr std::uint8_t kTypeToken = 1;
constexpr std::uint8_t kTypeAck = 2;
constexpr std::uint8_t kTypeShutdown = 3;

constexpr std::size_t kAckWireBytes = 11;  // type + srcPe + msgId

/// Per-(src,dst) link counters. Written from worker, receiver, and timer
/// threads; plain atomics, rolled into the Counters map after the run.
struct LinkStat {
  std::atomic<std::int64_t> tokens{0};     // logical tokens first sent
  std::atomic<std::int64_t> datagrams{0};  // wire transmissions (UDP)
  std::atomic<std::int64_t> bytes{0};      // wire bytes (UDP)
  std::atomic<std::int64_t> retx{0};       // retransmissions
};

void addLinkStats(Counters& out, const std::vector<LinkStat>& links,
                  int numPes) {
  for (int f = 0; f < numPes; ++f) {
    for (int t = 0; t < numPes; ++t) {
      const LinkStat& l = links[static_cast<std::size_t>(f * numPes + t)];
      if (const auto v = l.tokens.load())
        out.add(proto::linkCounterName(f, t, "tokens"), v);
      if (const auto v = l.datagrams.load())
        out.add(proto::linkCounterName(f, t, "datagrams"), v);
      if (const auto v = l.bytes.load())
        out.add(proto::linkCounterName(f, t, "bytes"), v);
      if (const auto v = l.retx.load())
        out.add(proto::linkCounterName(f, t, "retx"), v);
    }
  }
}

// ---------------------------------------------------------------------------
// InboxTransport: the original in-process path, verbatim. Without fault
// injection a send is a direct deposit; with it, every send rolls the
// seeded dice and dropped/delayed tokens are re-driven by a wall-clock
// retransmit daemon with exponential backoff.
// ---------------------------------------------------------------------------

class InboxTransport final : public Transport {
 public:
  InboxTransport(TransportSink& sink, const FaultPlan& plan, int numPes)
      : sink_(sink),
        plan_(plan),
        numPes_(numPes),
        links_(plan.enabled()
                   ? static_cast<std::size_t>(numPes) * numPes
                   : 0),
        sender_(plan.config().retry, /*faultsEnabled=*/true) {}

  ~InboxTransport() override { stop(); }

  const char* name() const override { return "inbox"; }

  bool start(std::string*) override {
    if (plan_.enabled() && !retxThread_.joinable()) {
      retxThread_ = std::thread([this] { retxMain(); });
    }
    return true;
  }

  void send(int fromPe, int toPe, NToken tok) override {
    if (!plan_.enabled()) {
      sink_.deposit(toPe, std::move(tok));
      return;
    }
    if (tok.msgId == 0) tok.msgId = netSeq_.fetch_add(1) + 1;
    link(fromPe, toPe).tokens.fetch_add(1);
    {
      std::lock_guard<std::mutex> g(senderM_);
      sender_.onSend(tok.msgId);
    }
    transmit(fromPe, toPe, std::move(tok));
  }

  void stop() override {
    if (!retxThread_.joinable()) return;
    {
      std::lock_guard<std::mutex> g(retxM_);
      retxStop_ = true;
    }
    retxCv_.notify_all();
    retxThread_.join();
  }

  void addStats(Counters& out) const override {
    if (!plan_.enabled()) return;
    out.add(proto::kFaultDrops, faultDrops_.load());
    out.add(proto::kFaultDups, faultDups_.load());
    out.add(proto::kFaultDelays, faultDelays_.load());
    {
      std::lock_guard<std::mutex> g(senderM_);
      sender_.addStats(out);
    }
    addLinkStats(out, links_, numPes_);
  }

 private:
  /// A token parked in the retransmit daemon: either a dropped message
  /// waiting for its backoff to expire (`redecide` — the resend rolls fresh
  /// fault dice) or a delayed one waiting out its injected latency
  /// (delivered as-is).
  struct RetxItem {
    Clock::time_point due;
    int fromPe = 0;
    int toPe = 0;
    bool redecide = true;
    NToken tok;
  };
  struct RetxLater {
    bool operator()(const RetxItem& a, const RetxItem& b) const {
      return a.due > b.due;  // min-heap on due time
    }
  };

  LinkStat& link(int fromPe, int toPe) {
    return links_[static_cast<std::size_t>(fromPe * numPes_ + toPe)];
  }

  /// The inbox path has no ack round-trip, so a settled token (anything but
  /// a drop) is reported to the protocol core as acknowledged — the drop
  /// branch then drives retransmit/give-up entirely through the core.
  void settle(std::uint64_t msgId) {
    std::lock_guard<std::mutex> g(senderM_);
    sender_.onAck(msgId);
  }

  /// One transmission attempt: rolls the seeded dice, then delivers,
  /// duplicates, or hands the token to the retransmit daemon. The token's
  /// quiescence charges ride along untouched.
  void transmit(int fromPe, int toPe, NToken tok) {
    switch (plan_.action(netSeq_.fetch_add(1) + 1)) {
      case FaultAction::Drop: {
        faultDrops_.fetch_add(1);
        proto::TimeoutDecision d;
        {
          std::lock_guard<std::mutex> g(senderM_);
          d = sender_.onTimeout(tok.msgId);
        }
        if (d.kind == proto::TimeoutDecision::Kind::GiveUp) {
          sink_.transportFail("reliable delivery gave up on a token to "
                              "worker " +
                              std::to_string(toPe) + " after " +
                              std::to_string(d.attempt) + " attempts");
          return;
        }
        scheduleRetx(fromPe, toPe, std::move(tok), d.backoffUs,
                     /*redecide=*/true);
        break;
      }
      case FaultAction::Duplicate: {
        faultDups_.fetch_add(1);
        settle(tok.msgId);
        NToken copy = tok;
        sink_.deposit(toPe, std::move(tok));
        // The duplicate is a real extra message: it carries its own
        // quiescence charges, consumed when the receiver dedups it.
        sink_.chargeDuplicate();
        sink_.deposit(toPe, std::move(copy));
        break;
      }
      case FaultAction::Delay:
        faultDelays_.fetch_add(1);
        settle(tok.msgId);
        scheduleRetx(fromPe, toPe, std::move(tok),
                     plan_.config().nativeDelayUs, /*redecide=*/false);
        break;
      case FaultAction::Deliver:
        settle(tok.msgId);
        sink_.deposit(toPe, std::move(tok));
        break;
    }
  }

  void scheduleRetx(int fromPe, int toPe, NToken tok, double delayUs,
                    bool redecide) {
    RetxItem item;
    item.due = Clock::now() + micros(delayUs);
    item.fromPe = fromPe;
    item.toPe = toPe;
    item.redecide = redecide;
    item.tok = std::move(tok);
    {
      std::lock_guard<std::mutex> g(retxM_);
      retxQ_.push(std::move(item));
    }
    retxCv_.notify_one();
  }

  /// The retransmit daemon: sleeps until the earliest due token, then
  /// re-drives it — a delayed token is delivered as-is; a dropped one counts
  /// as a resend and rolls fresh dice (it may be dropped again, backing off
  /// exponentially up to maxAttempts). Exits only when stop() raises
  /// `retxStop_` after the workers have joined; parked tokens hold pending
  /// and inboxTokens charges, so the program cannot terminate or declare
  /// deadlock while anything is still in here.
  void retxMain() {
    std::unique_lock<std::mutex> g(retxM_);
    while (!retxStop_) {
      if (retxQ_.empty()) {
        retxCv_.wait(g, [&] { return retxStop_ || !retxQ_.empty(); });
        continue;
      }
      const auto due = retxQ_.top().due;
      // Also wake when a newly parked token is due *earlier* than the one
      // we went to sleep on, so a short-backoff retransmit is never stuck
      // behind a long-backoff wait.
      if (retxCv_.wait_until(
              g, due, [&] { return retxStop_ || retxQ_.top().due < due; })) {
        if (retxStop_) break;
        continue;
      }
      while (!retxQ_.empty() && retxQ_.top().due <= Clock::now()) {
        RetxItem item = retxQ_.top();
        retxQ_.pop();
        g.unlock();
        if (item.redecide) {
          link(item.fromPe, item.toPe).retx.fetch_add(1);
          transmit(item.fromPe, item.toPe, std::move(item.tok));
        } else {
          sink_.deposit(item.toPe, std::move(item.tok));
        }
        g.lock();
      }
    }
  }

  TransportSink& sink_;
  FaultPlan plan_;
  const int numPes_;
  std::vector<LinkStat> links_;
  std::atomic<std::uint64_t> netSeq_{0};
  std::atomic<std::int64_t> faultDrops_{0};
  std::atomic<std::int64_t> faultDups_{0};
  std::atomic<std::int64_t> faultDelays_{0};
  /// Sender half of the delivery protocol core (backoff schedule, give-up,
  /// resend accounting). Shared by worker threads and the retransmit daemon.
  mutable std::mutex senderM_;
  proto::Delivery sender_;
  std::mutex retxM_;
  std::condition_variable retxCv_;
  std::priority_queue<RetxItem, std::vector<RetxItem>, RetxLater> retxQ_;
  bool retxStop_ = false;  // guarded by retxM_; set only after workers join
  std::thread retxThread_;
};

// ---------------------------------------------------------------------------
// UdpTransport: one UDP socket per PE on 127.0.0.1, tokens as datagrams.
//
// UDP gives no delivery guarantee even on loopback (a full SO_RCVBUF drops
// packets silently), so the reliable-delivery protocol ALWAYS runs:
//
//   sender    keeps every token in an unacked map keyed by msgId and
//             retransmits with exponential backoff until acknowledged
//             (giving up — failing the run — after maxAttempts);
//   receiver  acknowledges every token datagram (re-acking duplicates so a
//             lost ack self-heals) and suppresses duplicate msgIds before
//             they reach the inbox;
//   acks      are themselves datagrams and may be lost; injected faults
//             roll dice on acks too (lossy-ack model, as in the simulator).
//
// Fault injection composes at the datagram level: each transmission of a
// token (first send and every retransmit) rolls the seeded FaultPlan dice —
// Drop suppresses the sendto (the backoff timer recovers it), Duplicate
// sends the wire image twice, Delay parks the transmission in the timer.
//
// Threads: N receiver threads (one blocking recvfrom loop per PE socket —
// the "NIC", which a kill-mode fail-stop deliberately does NOT destroy) and
// one timer thread driving retransmits and delayed sends. Backoff, give-up,
// and msgId dedup decisions live in proto::Delivery: one sender endpoint
// shared under the unacked-map mutex, and one receiver endpoint per PE
// touched only by that PE's receiver thread (the endpoint models the NIC
// and deliberately survives a kill-mode fail-stop of the PE).
// ---------------------------------------------------------------------------

class UdpTransport final : public Transport {
 public:
  UdpTransport(TransportSink& sink, const FaultPlan& plan, int numPes)
      : sink_(sink),
        plan_(plan),
        numPes_(numPes),
        links_(static_cast<std::size_t>(numPes) * numPes),
        // Fault tests tune retry.rtoUs down to recover injected drops
        // quickly; honor it then. Fault-free, datagram loss is rare (large
        // SO_RCVBUF) and a sub-millisecond RTO just races thread scheduling
        // on the ack path, so the policy floors it — spurious retransmits
        // are harmless (receiver dedup) but wasteful.
        sender_(plan.config().retry, plan.enabled()),
        rx_(static_cast<std::size_t>(numPes),
            proto::Delivery(plan.config().retry, plan.enabled())) {}

  ~UdpTransport() override { stop(); }

  const char* name() const override { return "udp"; }

  bool start(std::string* err) override {
    fds_.assign(static_cast<std::size_t>(numPes_), -1);
    addrs_.assign(static_cast<std::size_t>(numPes_), sockaddr_in{});
    for (int pe = 0; pe < numPes_; ++pe) {
      const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
      if (fd < 0) {
        if (err) *err = "udp transport: socket(): " + errnoStr();
        closeAll();
        return false;
      }
      fds_[static_cast<std::size_t>(pe)] = fd;
      // Large receive buffer: loopback "packet loss" is exactly a full
      // receive queue, and every drop costs a backoff-delayed retransmit.
      int rcvbuf = 4 << 20;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
      // Receive timeout so a receiver never blocks past shutdown even if
      // the wake-up datagram itself were dropped.
      timeval tv{};
      tv.tv_usec = 20000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
      sockaddr_in sa{};
      sa.sin_family = AF_INET;
      sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      sa.sin_port = 0;  // ephemeral: each PE learns its port from the bind
      if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
        if (err) *err = "udp transport: bind(): " + errnoStr();
        closeAll();
        return false;
      }
      socklen_t len = sizeof addrs_[static_cast<std::size_t>(pe)];
      if (::getsockname(
              fd,
              reinterpret_cast<sockaddr*>(&addrs_[static_cast<std::size_t>(pe)]),
              &len) != 0) {
        if (err) *err = "udp transport: getsockname(): " + errnoStr();
        closeAll();
        return false;
      }
    }
    for (int pe = 0; pe < numPes_; ++pe) {
      rxThreads_.emplace_back([this, pe] { recvMain(pe); });
    }
    timerThread_ = std::thread([this] { timerMain(); });
    return true;
  }

  void send(int fromPe, int toPe, NToken tok) override {
    tok.msgId = nextMsgId_.fetch_add(1) + 1;
    Unacked u;
    u.fromPe = fromPe;
    u.toPe = toPe;
    wireEncodeToken(tok, static_cast<std::uint16_t>(fromPe), u.wire.data());
    LinkStat& l = link(fromPe, toPe);
    l.tokens.fetch_add(1);
    tokensSent_.fetch_add(1);
    {
      std::lock_guard<std::mutex> g(m_);
      sender_.onSend(tok.msgId);
      heap_.push(TimerEv{Clock::now() + micros(sender_.initialRtoUs()),
                         tok.msgId, /*delayedSend=*/false});
      unacked_.emplace(tok.msgId, u);
    }
    timerCv_.notify_one();
    attemptTransmit(u, tok.msgId);
  }

  void stop() override {
    if (fds_.empty()) return;
    rxStop_.store(true);
    {
      std::lock_guard<std::mutex> g(m_);
      timerStop_ = true;
    }
    timerCv_.notify_all();
    const std::uint8_t wake = kTypeShutdown;
    for (int pe = 0; pe < numPes_; ++pe) {
      rawSend(pe, addrs_[static_cast<std::size_t>(pe)],
              sizeof(sockaddr_in), &wake, 1);
    }
    for (auto& t : rxThreads_) t.join();
    rxThreads_.clear();
    if (timerThread_.joinable()) timerThread_.join();
    closeAll();
  }

  void addStats(Counters& out) const override {
    out.add("net.udp.tokensSent", tokensSent_.load());
    out.add("net.udp.datagramsSent", datagramsSent_.load());
    out.add("net.udp.bytesSent", bytesSent_.load());
    out.add("net.udp.datagramsRecv", datagramsRecv_.load());
    out.add("net.udp.bytesRecv", bytesRecv_.load());
    out.add("net.udp.acksSent", acksSent_.load());
    out.add("net.udp.acksRecv", acksRecv_.load());
    out.add("net.udp.sendErrors", sendErrors_.load());
    out.add("net.udp.badDatagrams", badDatagrams_.load());
    {
      std::lock_guard<std::mutex> g(m_);
      sender_.addStats(out);
    }
    // Receiver threads are joined by stop() before stats are read.
    for (const proto::Delivery& rx : rx_) rx.addStats(out);
    if (plan_.enabled()) {
      out.add(proto::kFaultDrops, faultDrops_.load());
      out.add(proto::kFaultDups, faultDups_.load());
      out.add(proto::kFaultDelays, faultDelays_.load());
    }
    addLinkStats(out, links_, numPes_);
  }

 private:
  struct Unacked {
    int fromPe = 0;
    int toPe = 0;
    std::array<std::uint8_t, kTokenWireBytes> wire{};
  };
  struct TimerEv {
    Clock::time_point due;
    std::uint64_t msgId = 0;
    bool delayedSend = false;  // true: late-arriving original, no dice
  };
  struct EvLater {
    bool operator()(const TimerEv& a, const TimerEv& b) const {
      return a.due > b.due;
    }
  };

  static std::string errnoStr() { return std::strerror(errno); }

  LinkStat& link(int fromPe, int toPe) {
    return links_[static_cast<std::size_t>(fromPe * numPes_ + toPe)];
  }

  void closeAll() {
    for (int& fd : fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    fds_.clear();
  }

  /// Raw datagram transmission from `fromPe`'s socket. A sendto failure
  /// (e.g. ENOBUFS) is counted and otherwise treated as network loss — the
  /// retransmit timer recovers token datagrams, re-acking recovers acks.
  void rawSend(int fromPe, const sockaddr_in& to, socklen_t toLen,
               const void* data, std::size_t len) {
    const ssize_t n =
        ::sendto(fds_[static_cast<std::size_t>(fromPe)], data, len, 0,
                 reinterpret_cast<const sockaddr*>(&to), toLen);
    if (n < 0) sendErrors_.fetch_add(1);
  }

  void xmitToken(const Unacked& u) {
    rawSend(u.fromPe, addrs_[static_cast<std::size_t>(u.toPe)],
            sizeof(sockaddr_in), u.wire.data(), u.wire.size());
    LinkStat& l = link(u.fromPe, u.toPe);
    l.datagrams.fetch_add(1);
    l.bytes.fetch_add(static_cast<std::int64_t>(u.wire.size()));
    datagramsSent_.fetch_add(1);
    bytesSent_.fetch_add(static_cast<std::int64_t>(u.wire.size()));
  }

  /// One transmission attempt of a token datagram: rolls the seeded dice
  /// when fault injection is on, otherwise just sends. Drop relies on the
  /// retransmit timer (already scheduled) to recover.
  void attemptTransmit(const Unacked& u, std::uint64_t msgId) {
    if (plan_.enabled()) {
      switch (plan_.action(txSeq_.fetch_add(1) + 1)) {
        case FaultAction::Drop:
          faultDrops_.fetch_add(1);
          return;
        case FaultAction::Duplicate:
          faultDups_.fetch_add(1);
          xmitToken(u);
          break;  // fall through to the normal copy below
        case FaultAction::Delay: {
          faultDelays_.fetch_add(1);
          {
            std::lock_guard<std::mutex> g(m_);
            heap_.push(TimerEv{
                Clock::now() + micros(plan_.config().nativeDelayUs), msgId,
                /*delayedSend=*/true});
          }
          timerCv_.notify_one();
          return;
        }
        case FaultAction::Deliver:
          break;
      }
    }
    xmitToken(u);
  }

  void sendAck(int pe, const sockaddr_in& to, socklen_t toLen,
               std::uint64_t msgId) {
    std::uint8_t pkt[kAckWireBytes];
    pkt[0] = kTypeAck;
    put16(pkt + 1, static_cast<std::uint16_t>(pe));
    put64(pkt + 3, msgId);
    int copies = 1;
    if (plan_.enabled()) {
      // Lossy acks: acknowledgments roll the same dice as data. A dropped
      // ack costs one retransmit + one dedup; injected Delay on an ack is
      // treated as Deliver (the retransmit path already covers lateness).
      switch (plan_.action(txSeq_.fetch_add(1) + 1)) {
        case FaultAction::Drop:
          faultDrops_.fetch_add(1);
          copies = 0;
          break;
        case FaultAction::Duplicate:
          faultDups_.fetch_add(1);
          copies = 2;
          break;
        default:
          break;
      }
    }
    for (int i = 0; i < copies; ++i) {
      rawSend(pe, to, toLen, pkt, sizeof pkt);
      acksSent_.fetch_add(1);
    }
  }

  /// Per-PE receiver loop: the PE's "NIC". Acks every token datagram,
  /// suppresses duplicate msgIds through the PE's protocol-core receiver
  /// endpoint (touched only by this thread), and deposits first copies into
  /// the owner's inbox.
  void recvMain(int pe) {
    const int fd = fds_[static_cast<std::size_t>(pe)];
    std::uint8_t buf[256];
    proto::Delivery& rx = rx_[static_cast<std::size_t>(pe)];
    for (;;) {
      sockaddr_in src{};
      socklen_t srcLen = sizeof src;
      const ssize_t n = ::recvfrom(fd, buf, sizeof buf, 0,
                                   reinterpret_cast<sockaddr*>(&src), &srcLen);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          if (rxStop_.load()) return;
          continue;
        }
        return;  // socket gone: shutdown path
      }
      if (n < 1) continue;
      datagramsRecv_.fetch_add(1);
      bytesRecv_.fetch_add(n);
      switch (buf[0]) {
        case kTypeToken: {
          NToken tok;
          std::uint16_t srcPe = 0;
          if (!wireDecodeToken(buf, static_cast<std::size_t>(n), tok,
                               &srcPe)) {
            badDatagrams_.fetch_add(1);
            break;
          }
          // Ack first copy AND duplicates: a re-ack is how a lost ack
          // self-heals without the sender retrying forever.
          rx.count(proto::kAcks);
          sendAck(pe, src, srcLen, tok.msgId);
          if (!rx.accept(tok.msgId)) break;
          sink_.deposit(pe, std::move(tok));
          break;
        }
        case kTypeAck: {
          if (static_cast<std::size_t>(n) < kAckWireBytes) {
            badDatagrams_.fetch_add(1);
            break;
          }
          acksRecv_.fetch_add(1);
          const std::uint64_t msgId = get64(buf + 3);
          std::lock_guard<std::mutex> g(m_);
          sender_.onAck(msgId);
          unacked_.erase(msgId);
          break;
        }
        case kTypeShutdown:
          if (rxStop_.load()) return;
          break;
        default:
          badDatagrams_.fetch_add(1);
          break;
      }
    }
  }

  /// Timer loop: drives retransmits of unacked tokens (fresh dice per
  /// attempt, exponential backoff, give-up after maxAttempts fails the run)
  /// and fault-injected delayed sends (the original wire image, no dice).
  void timerMain() {
    std::unique_lock<std::mutex> g(m_);
    while (!timerStop_) {
      if (heap_.empty()) {
        timerCv_.wait(g, [&] { return timerStop_ || !heap_.empty(); });
        continue;
      }
      const auto due = heap_.top().due;
      if (timerCv_.wait_until(g, due, [&] {
            return timerStop_ || heap_.top().due < due;
          })) {
        if (timerStop_) break;
        continue;  // an earlier event was parked; recompute the sleep
      }
      while (!heap_.empty() && heap_.top().due <= Clock::now()) {
        const TimerEv ev = heap_.top();
        heap_.pop();
        auto it = unacked_.find(ev.msgId);
        if (it == unacked_.end()) continue;  // acked: nothing left to do
        if (ev.delayedSend) {
          const Unacked u = it->second;
          g.unlock();
          xmitToken(u);
          g.lock();
          continue;
        }
        const proto::TimeoutDecision d = sender_.onTimeout(ev.msgId);
        if (d.kind == proto::TimeoutDecision::Kind::Stale) continue;
        if (d.kind == proto::TimeoutDecision::Kind::GiveUp) {
          const Unacked u = it->second;
          unacked_.erase(it);
          g.unlock();
          sink_.transportFail(
              "udp transport: reliable delivery gave up on a token from "
              "worker " +
              std::to_string(u.fromPe) + " to worker " +
              std::to_string(u.toPe) + " after " +
              std::to_string(d.attempt) + " attempts");
          g.lock();
          continue;
        }
        const Unacked u = it->second;
        heap_.push(TimerEv{Clock::now() + micros(d.backoffUs), ev.msgId,
                           /*delayedSend=*/false});
        link(u.fromPe, u.toPe).retx.fetch_add(1);
        g.unlock();
        attemptTransmit(u, ev.msgId);
        g.lock();
      }
    }
  }

  TransportSink& sink_;
  FaultPlan plan_;
  const int numPes_;
  std::vector<LinkStat> links_;
  /// Protocol core endpoints: sender half under m_, one receiver half per
  /// PE owned by its receiver thread (read by addStats after join).
  proto::Delivery sender_;
  std::vector<proto::Delivery> rx_;

  std::vector<int> fds_;
  std::vector<sockaddr_in> addrs_;
  std::vector<std::thread> rxThreads_;
  std::thread timerThread_;
  std::atomic<bool> rxStop_{false};

  mutable std::mutex m_;  // guards unacked_, heap_, timerStop_, sender_
  std::condition_variable timerCv_;
  std::unordered_map<std::uint64_t, Unacked> unacked_;
  std::priority_queue<TimerEv, std::vector<TimerEv>, EvLater> heap_;
  bool timerStop_ = false;

  std::atomic<std::uint64_t> nextMsgId_{0};
  std::atomic<std::uint64_t> txSeq_{0};
  std::atomic<std::int64_t> tokensSent_{0};
  std::atomic<std::int64_t> datagramsSent_{0};
  std::atomic<std::int64_t> bytesSent_{0};
  std::atomic<std::int64_t> datagramsRecv_{0};
  std::atomic<std::int64_t> bytesRecv_{0};
  std::atomic<std::int64_t> acksSent_{0};
  std::atomic<std::int64_t> acksRecv_{0};
  std::atomic<std::int64_t> sendErrors_{0};
  std::atomic<std::int64_t> badDatagrams_{0};
  std::atomic<std::int64_t> faultDrops_{0};
  std::atomic<std::int64_t> faultDups_{0};
  std::atomic<std::int64_t> faultDelays_{0};
};

}  // namespace

bool parseTransportKind(const std::string& name, TransportKind& out) {
  if (name == "inbox") {
    out = TransportKind::Inbox;
    return true;
  }
  if (name == "udp") {
    out = TransportKind::Udp;
    return true;
  }
  return false;
}

const char* transportKindName(TransportKind kind) {
  return kind == TransportKind::Udp ? "udp" : "inbox";
}

void wireEncodeToken(const NToken& tok, std::uint16_t srcPe,
                     std::uint8_t out[kTokenWireBytes]) {
  out[0] = kTypeToken;
  out[1] = static_cast<std::uint8_t>((tok.toCont ? 1 : 0) |
                                     (tok.add ? 2 : 0));
  put16(out + 2, srcPe);
  put16(out + 4, tok.spCode);
  put16(out + 6, tok.slot);
  put64(out + 8, tok.ctx);
  put64(out + 16, tok.cont.pack());
  out[24] = static_cast<std::uint8_t>(tok.v.tag);
  put64(out + 25, tok.v.bits);
  put64(out + 33, tok.msgId);
  put64(out + 41, tok.senderCtx);
  put64(out + 49, tok.sendKey);
  put64(out + 57, tok.wakeKey);
}

bool wireDecodeToken(const std::uint8_t* data, std::size_t len, NToken& tok,
                     std::uint16_t* srcPe) {
  if (len != kTokenWireBytes || data[0] != kTypeToken) return false;
  if (data[1] & ~0x3u) return false;
  if (data[24] > static_cast<std::uint8_t>(Tag::Cont)) return false;
  tok.toCont = (data[1] & 1) != 0;
  tok.add = (data[1] & 2) != 0;
  if (srcPe) *srcPe = get16(data + 2);
  tok.spCode = get16(data + 4);
  tok.slot = get16(data + 6);
  tok.ctx = get64(data + 8);
  tok.cont = Cont::unpack(get64(data + 16));
  tok.v.tag = static_cast<Tag>(data[24]);
  tok.v.bits = get64(data + 25);
  tok.msgId = get64(data + 33);
  tok.senderCtx = get64(data + 41);
  tok.sendKey = get64(data + 49);
  tok.wakeKey = get64(data + 57);
  return true;
}

std::unique_ptr<Transport> makeInboxTransport(TransportSink& sink,
                                              const FaultPlan& plan,
                                              int numPes) {
  return std::make_unique<InboxTransport>(sink, plan, numPes);
}

std::unique_ptr<Transport> makeUdpTransport(TransportSink& sink,
                                            const FaultPlan& plan,
                                            int numPes) {
  return std::make_unique<UdpTransport>(sink, plan, numPes);
}

std::unique_ptr<Transport> makeTransport(TransportKind kind,
                                         TransportSink& sink,
                                         const FaultPlan& plan, int numPes) {
  if (kind == TransportKind::Udp) return makeUdpTransport(sink, plan, numPes);
  return makeInboxTransport(sink, plan, numPes);
}

}  // namespace pods::native
