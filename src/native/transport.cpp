#include "native/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>

#include "proto/delivery.hpp"
#include "support/check.hpp"

namespace pods::native {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration micros(double us) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::micro>(us));
}

void put16(std::uint8_t* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
void put64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint16_t get16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
std::uint64_t get64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Datagram type bytes (first byte of every UDP packet). Type 2 was the
// retired per-message ack; the value stays reserved so old captures stay
// readable and a stray legacy ack is rejected, not misparsed.
constexpr std::uint8_t kTypeToken = 1;
constexpr std::uint8_t kTypeLegacyAck = 2;
constexpr std::uint8_t kTypeShutdown = 3;
constexpr std::uint8_t kTypeBatch = 4;
constexpr std::uint8_t kTypeCumAck = 5;
// Multi-process (epoch-stamped) variants: same record/ack bodies plus one
// incarnation byte, so a respawned sender's renumbered stream is never
// confused with its predecessor's.
constexpr std::uint8_t kTypeBatchE = 6;
constexpr std::uint8_t kTypeCumAckE = 7;

// Cumulative ack: type + ackerPe u16 + cumSeq u64 + bitmap u64.
constexpr std::size_t kCumAckWireBytes = 19;
// Epoch batch header: type + srcPe u16 + count u16 + epoch u8.
constexpr std::size_t kBatchEHeaderBytes = 6;
// Epoch cumulative ack: kCumAckWireBytes + epoch u8. The epoch is the
// *acked stream's sender's* incarnation as known by the acker — a reborn
// sender must drop acks for its predecessor's stream, whose seq numbers
// would otherwise wrongly retire the fresh renumbered ones.
constexpr std::size_t kCumAckEWireBytes = 20;

// Outbox flush deadline: how long a partially-filled batch may sit before
// the timer thread ships it. The sending worker's loop flushes far more
// often than this; the deadline only covers a worker stuck in a long slice.
constexpr double kFlushDeadlineUs = 50.0;

// Lazy-ack threshold: a receiver answers partial batches and healed
// duplicates immediately, but lets full-batch streams run this many tokens
// between cumulative acks (see recvMain).
constexpr std::int64_t kAckLazyTokens = 64;

/// Per-(src,dst) link counters. Written from worker, receiver, and timer
/// threads; plain atomics, rolled into the Counters map after the run.
struct LinkStat {
  std::atomic<std::int64_t> tokens{0};     // logical tokens first sent
  std::atomic<std::int64_t> datagrams{0};  // wire transmissions (UDP)
  std::atomic<std::int64_t> bytes{0};      // wire bytes (UDP)
  std::atomic<std::int64_t> retx{0};       // retransmissions
};

void addLinkStats(Counters& out, const std::vector<LinkStat>& links,
                  int numPes) {
  for (int f = 0; f < numPes; ++f) {
    for (int t = 0; t < numPes; ++t) {
      const LinkStat& l = links[static_cast<std::size_t>(f * numPes + t)];
      if (const auto v = l.tokens.load())
        out.add(proto::linkCounterName(f, t, "tokens"), v);
      if (const auto v = l.datagrams.load())
        out.add(proto::linkCounterName(f, t, "datagrams"), v);
      if (const auto v = l.bytes.load())
        out.add(proto::linkCounterName(f, t, "bytes"), v);
      if (const auto v = l.retx.load())
        out.add(proto::linkCounterName(f, t, "retx"), v);
    }
  }
}

// ---------------------------------------------------------------------------
// InboxTransport: the original in-process path, verbatim. Without fault
// injection a send is a direct deposit; with it, every send rolls the
// seeded dice and dropped/delayed tokens are re-driven by a wall-clock
// retransmit daemon with exponential backoff.
// ---------------------------------------------------------------------------

class InboxTransport final : public Transport {
 public:
  InboxTransport(TransportSink& sink, const FaultPlan& plan, int numPes)
      : sink_(sink),
        plan_(plan),
        numPes_(numPes),
        links_(plan.enabled()
                   ? static_cast<std::size_t>(numPes) * numPes
                   : 0),
        sender_(plan.config().retry, /*faultsEnabled=*/true) {}

  ~InboxTransport() override { stop(); }

  const char* name() const override { return "inbox"; }

  bool start(std::string*) override {
    if (plan_.enabled() && !retxThread_.joinable()) {
      retxThread_ = std::thread([this] { retxMain(); });
    }
    return true;
  }

  void send(int fromPe, int toPe, NToken tok) override {
    if (!plan_.enabled()) {
      sink_.deposit(toPe, fromPe, std::move(tok));
      return;
    }
    if (tok.msgId == 0) tok.msgId = netSeq_.fetch_add(1) + 1;
    link(fromPe, toPe).tokens.fetch_add(1);
    {
      std::lock_guard<std::mutex> g(senderM_);
      sender_.onSend(tok.msgId);
    }
    transmit(fromPe, toPe, std::move(tok), /*lane=*/fromPe);
  }

  void stop() override {
    if (!retxThread_.joinable()) return;
    {
      std::lock_guard<std::mutex> g(retxM_);
      retxStop_ = true;
    }
    retxCv_.notify_all();
    retxThread_.join();
  }

  void addStats(Counters& out) const override {
    if (!plan_.enabled()) return;
    out.add(proto::kFaultDrops, faultDrops_.load());
    out.add(proto::kFaultDups, faultDups_.load());
    out.add(proto::kFaultDelays, faultDelays_.load());
    {
      std::lock_guard<std::mutex> g(senderM_);
      sender_.addStats(out);
    }
    addLinkStats(out, links_, numPes_);
  }

 private:
  /// A token parked in the retransmit daemon: either a dropped message
  /// waiting for its backoff to expire (`redecide` — the resend rolls fresh
  /// fault dice) or a delayed one waiting out its injected latency
  /// (delivered as-is).
  struct RetxItem {
    Clock::time_point due;
    int fromPe = 0;
    int toPe = 0;
    bool redecide = true;
    NToken tok;
  };
  struct RetxLater {
    bool operator()(const RetxItem& a, const RetxItem& b) const {
      return a.due > b.due;  // min-heap on due time
    }
  };

  LinkStat& link(int fromPe, int toPe) {
    return links_[static_cast<std::size_t>(fromPe * numPes_ + toPe)];
  }

  /// The inbox path has no ack round-trip, so a settled token (anything but
  /// a drop) is reported to the protocol core as acknowledged — the drop
  /// branch then drives retransmit/give-up entirely through the core.
  void settle(std::uint64_t msgId) {
    std::lock_guard<std::mutex> g(senderM_);
    sender_.onAck(msgId);
  }

  /// One transmission attempt: rolls the seeded dice, then delivers,
  /// duplicates, or hands the token to the retransmit daemon. The token's
  /// quiescence charges ride along untouched. `lane` identifies the calling
  /// thread for the destination's SPSC inbox rings (worker PE id, or
  /// numPes_ from the retransmit daemon).
  void transmit(int fromPe, int toPe, NToken tok, int lane) {
    switch (plan_.action(netSeq_.fetch_add(1) + 1)) {
      case FaultAction::Drop: {
        faultDrops_.fetch_add(1);
        proto::TimeoutDecision d;
        {
          std::lock_guard<std::mutex> g(senderM_);
          d = sender_.onTimeout(tok.msgId);
        }
        if (d.kind == proto::TimeoutDecision::Kind::GiveUp) {
          sink_.transportFail("reliable delivery gave up on a token to "
                              "worker " +
                              std::to_string(toPe) + " after " +
                              std::to_string(d.attempt) + " attempts");
          return;
        }
        scheduleRetx(fromPe, toPe, std::move(tok), d.backoffUs,
                     /*redecide=*/true);
        break;
      }
      case FaultAction::Duplicate: {
        faultDups_.fetch_add(1);
        settle(tok.msgId);
        NToken copy = tok;
        sink_.deposit(toPe, lane, std::move(tok));
        // The duplicate is a real extra message: it carries its own
        // quiescence charges, consumed when the receiver dedups it.
        sink_.chargeDuplicate();
        sink_.deposit(toPe, lane, std::move(copy));
        break;
      }
      case FaultAction::Delay:
        faultDelays_.fetch_add(1);
        settle(tok.msgId);
        scheduleRetx(fromPe, toPe, std::move(tok),
                     plan_.config().nativeDelayUs, /*redecide=*/false);
        break;
      case FaultAction::Deliver:
        settle(tok.msgId);
        sink_.deposit(toPe, lane, std::move(tok));
        break;
    }
  }

  void scheduleRetx(int fromPe, int toPe, NToken tok, double delayUs,
                    bool redecide) {
    RetxItem item;
    item.due = Clock::now() + micros(delayUs);
    item.fromPe = fromPe;
    item.toPe = toPe;
    item.redecide = redecide;
    item.tok = std::move(tok);
    {
      std::lock_guard<std::mutex> g(retxM_);
      retxQ_.push(std::move(item));
    }
    retxCv_.notify_one();
  }

  /// The retransmit daemon: sleeps until the earliest due token, then
  /// re-drives it — a delayed token is delivered as-is; a dropped one counts
  /// as a resend and rolls fresh dice (it may be dropped again, backing off
  /// exponentially up to maxAttempts). Exits only when stop() raises
  /// `retxStop_` after the workers have joined; parked tokens hold pending
  /// and inboxTokens charges, so the program cannot terminate or declare
  /// deadlock while anything is still in here.
  void retxMain() {
    std::unique_lock<std::mutex> g(retxM_);
    while (!retxStop_) {
      if (retxQ_.empty()) {
        retxCv_.wait(g, [&] { return retxStop_ || !retxQ_.empty(); });
        continue;
      }
      const auto due = retxQ_.top().due;
      // Also wake when a newly parked token is due *earlier* than the one
      // we went to sleep on, so a short-backoff retransmit is never stuck
      // behind a long-backoff wait.
      if (retxCv_.wait_until(
              g, due, [&] { return retxStop_ || retxQ_.top().due < due; })) {
        if (retxStop_) break;
        continue;
      }
      while (!retxQ_.empty() && retxQ_.top().due <= Clock::now()) {
        RetxItem item = retxQ_.top();
        retxQ_.pop();
        g.unlock();
        if (item.redecide) {
          link(item.fromPe, item.toPe).retx.fetch_add(1);
          transmit(item.fromPe, item.toPe, std::move(item.tok),
                   /*lane=*/numPes_);
        } else {
          sink_.deposit(item.toPe, numPes_, std::move(item.tok));
        }
        g.lock();
      }
    }
  }

  TransportSink& sink_;
  FaultPlan plan_;
  const int numPes_;
  std::vector<LinkStat> links_;
  std::atomic<std::uint64_t> netSeq_{0};
  std::atomic<std::int64_t> faultDrops_{0};
  std::atomic<std::int64_t> faultDups_{0};
  std::atomic<std::int64_t> faultDelays_{0};
  /// Sender half of the delivery protocol core (backoff schedule, give-up,
  /// resend accounting). Shared by worker threads and the retransmit daemon.
  mutable std::mutex senderM_;
  proto::Delivery sender_;
  std::mutex retxM_;
  std::condition_variable retxCv_;
  std::priority_queue<RetxItem, std::vector<RetxItem>, RetxLater> retxQ_;
  bool retxStop_ = false;  // guarded by retxM_; set only after workers join
  std::thread retxThread_;
};

// ---------------------------------------------------------------------------
// UdpTransport: one UDP socket per PE on 127.0.0.1, tokens as batched
// datagrams with cumulative acknowledgment.
//
// Sends coalesce per (src,dst) link: each link keeps a small outbox that
// accumulates 65-byte token records and ships them as one MTU-sized batch
// datagram when full (kBatchMaxTokens), when the sending worker's loop
// calls flush(), or when the 50 µs deadline timer fires. A single-token
// flush goes out as the bare legacy token datagram.
//
// UDP gives no delivery guarantee even on loopback (a full SO_RCVBUF drops
// packets silently), so the reliable-delivery protocol ALWAYS runs:
//
//   sender    numbers each link's tokens with a dense 1-based sequence
//             (packed into the msgId, see proto::Delivery::packLinkMsgId),
//             keeps every unacked record's wire image per link, and
//             retransmits with exponential backoff until acknowledged
//             (giving up — failing the run — after maxAttempts). A
//             retransmitted record rides the link's next batch with its
//             ORIGINAL msgId (never re-registered, so quiescence is never
//             double-charged) alongside fresh tokens;
//   receiver  answers every token-carrying datagram with one cumulative
//             ack — highest contiguously received seq plus a selective
//             bitmap for seqs above it — re-acking duplicates so a lost
//             ack self-heals, and suppresses duplicates by link sequence
//             before they reach the inbox;
//   acks      are themselves datagrams and may be lost; injected faults
//             roll dice on acks too (lossy-ack model, as in the simulator).
//
// Fault injection composes at the datagram level: each transmission of a
// batch (first flush and every retransmit flush) rolls the seeded FaultPlan
// dice — Drop suppresses the sendto for the whole batch (the backoff timers
// recover each token), Duplicate sends the wire image twice, Delay parks
// the image in the timer.
//
// Threads: N receiver threads (one blocking recvfrom loop per PE socket —
// the "NIC", which a kill-mode fail-stop deliberately does NOT destroy) and
// one timer thread driving retransmit batches, flush deadlines, and delayed
// sends. Backoff, give-up, sequence windows, and dedup decisions live in
// proto::Delivery: one sender endpoint under m_, and one receiver endpoint
// per PE touched only by that PE's receiver thread (the endpoint models the
// NIC and deliberately survives a kill-mode fail-stop of the PE).
//
// Lock order: lk.m (a link's outbox) and m_ (sender window + timer heap)
// are NEVER held together — every path releases one before taking the
// other, so the send path stays two short critical sections.
// ---------------------------------------------------------------------------

class UdpTransport final : public Transport {
 public:
  UdpTransport(TransportSink& sink, const FaultPlan& plan, int numPes)
      : sink_(sink),
        plan_(plan),
        numPes_(numPes),
        links_(static_cast<std::size_t>(numPes) * numPes),
        // Fault tests tune retry.rtoUs down to recover injected drops
        // quickly; honor it then. Fault-free, datagram loss is rare (large
        // SO_RCVBUF) and a sub-millisecond RTO just races thread scheduling
        // on the ack path, so the policy floors it — spurious retransmits
        // are harmless (receiver dedup) but wasteful.
        sender_(plan.config().retry, plan.enabled()),
        rx_(static_cast<std::size_t>(numPes),
            proto::Delivery(plan.config().retry, plan.enabled())),
        outSlots_(new std::atomic<LinkOut*>[static_cast<std::size_t>(numPes) *
                                            numPes]),
        dirtySrc_(new std::atomic<int>[static_cast<std::size_t>(numPes)]) {
    for (std::size_t i = 0; i < static_cast<std::size_t>(numPes) * numPes; ++i)
      outSlots_[i].store(nullptr, std::memory_order_relaxed);
    for (int i = 0; i < numPes; ++i)
      dirtySrc_[i].store(0, std::memory_order_relaxed);
  }

  ~UdpTransport() override {
    stop();
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(numPes_) * numPes_; ++i)
      delete outSlots_[i].load(std::memory_order_relaxed);
  }

  const char* name() const override { return "udp"; }

  bool start(std::string* err) override {
    fds_.assign(static_cast<std::size_t>(numPes_), -1);
    addrs_.assign(static_cast<std::size_t>(numPes_), sockaddr_in{});
    for (int pe = 0; pe < numPes_; ++pe) {
      const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
      if (fd < 0) {
        if (err) *err = "udp transport: socket(): " + errnoStr();
        closeAll();
        return false;
      }
      fds_[static_cast<std::size_t>(pe)] = fd;
      // Large receive buffer: loopback "packet loss" is exactly a full
      // receive queue, and every drop costs a backoff-delayed retransmit.
      int rcvbuf = 4 << 20;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
      // Receive timeout so a receiver never blocks past shutdown even if
      // the wake-up datagram itself were dropped.
      timeval tv{};
      tv.tv_usec = 20000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
      sockaddr_in sa{};
      sa.sin_family = AF_INET;
      sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      sa.sin_port = 0;  // ephemeral: each PE learns its port from the bind
      if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
        if (err) *err = "udp transport: bind(): " + errnoStr();
        closeAll();
        return false;
      }
      socklen_t len = sizeof addrs_[static_cast<std::size_t>(pe)];
      if (::getsockname(
              fd,
              reinterpret_cast<sockaddr*>(&addrs_[static_cast<std::size_t>(pe)]),
              &len) != 0) {
        if (err) *err = "udp transport: getsockname(): " + errnoStr();
        closeAll();
        return false;
      }
    }
    rxThread_ = std::thread([this] { recvMain(); });
    timerThread_ = std::thread([this] { timerMain(); });
    return true;
  }

  /// Parks the token in the (fromPe,toPe) outbox; ships when the batch
  /// fills, when the worker's loop flushes, or at the deadline. The token's
  /// quiescence charge was made at enqueue and keeps it visible while it
  /// coalesces here.
  void send(int fromPe, int toPe, NToken tok) override {
    LinkOut& lk = linkOut(fromPe, toPe);
    link(fromPe, toPe).tokens.fetch_add(1);
    tokensSent_.fetch_add(1);
    bool wrote = false;
    bool full = false;
    bool first = false;
    while (!wrote) {
      {
        std::lock_guard<std::mutex> g(lk.m);
        // The timer thread can leave the outbox exactly full: its
        // retransmit requeue appends up to the cap under lk.m and flushes
        // only after dropping it. Writing a record here in that window
        // would run past buf, so flush the full outbox ourselves and
        // retry.
        if (lk.count < kBatchMaxTokens) {
          const std::uint64_t seq = ++lk.nextSeq;
          tok.msgId = proto::Delivery::packLinkMsgId(fromPe, toPe, seq);
          std::uint8_t* rec =
              lk.buf + kBatchHeaderBytes +
              static_cast<std::size_t>(lk.count) * kTokenWireBytes;
          wireEncodeToken(tok, static_cast<std::uint16_t>(fromPe), rec);
          std::memcpy(lk.unackedWire[seq].data(), rec, kTokenWireBytes);
          if (lk.count == 0) {
            first = true;
            dirtySrc_[fromPe].fetch_add(1, std::memory_order_release);
          }
          if (lk.freshCount == 0) lk.firstFreshSeq = seq;
          ++lk.count;
          ++lk.freshCount;
          full = lk.count == kBatchMaxTokens;
          wrote = true;
        }
      }
      if (!wrote) flushLink(fromPe, toPe, FlushWhy::Full);
    }
    if (full)
      flushLink(fromPe, toPe, FlushWhy::Full);
    else if (first)
      armFlushTimer(fromPe, toPe);
  }

  /// Ships everything coalescing in fromPe's outboxes. Called by the
  /// sending worker at the top of its scheduling loop; the dirty count
  /// makes the common (nothing pending) case one atomic load.
  void flush(int fromPe) override {
    if (dirtySrc_[fromPe].load(std::memory_order_acquire) == 0) return;
    for (int to = 0; to < numPes_; ++to) {
      if (to == fromPe) continue;
      if (outSlots_[slot(fromPe, to)].load(std::memory_order_acquire))
        flushLink(fromPe, to, FlushWhy::Drain);
    }
  }

  void stop() override {
    if (fds_.empty()) return;
    rxStop_.store(true);
    {
      std::lock_guard<std::mutex> g(m_);
      timerStop_ = true;
    }
    timerCv_.notify_all();
    const std::uint8_t wake = kTypeShutdown;
    for (int pe = 0; pe < numPes_; ++pe) {
      rawSend(pe, addrs_[static_cast<std::size_t>(pe)],
              sizeof(sockaddr_in), &wake, 1);
    }
    if (rxThread_.joinable()) rxThread_.join();
    if (timerThread_.joinable()) timerThread_.join();
    closeAll();
  }

  void addStats(Counters& out) const override {
    out.add("net.udp.tokensSent", tokensSent_.load());
    out.add("net.udp.datagramsSent", datagramsSent_.load());
    out.add("net.udp.bytesSent", bytesSent_.load());
    out.add("net.udp.datagramsRecv", datagramsRecv_.load());
    out.add("net.udp.bytesRecv", bytesRecv_.load());
    out.add("net.udp.acksSent", acksSent_.load());
    out.add("net.udp.acksRecv", acksRecv_.load());
    out.add("net.udp.sendErrors", sendErrors_.load());
    out.add("net.udp.badDatagrams", badDatagrams_.load());
    const std::int64_t bd = batchDgrams_.load();
    const std::int64_t bt = batchTokens_.load();
    out.add("net.udp.batch.datagrams", bd);
    out.add("net.udp.batch.tokens", bt);
    out.add("net.udp.batch.tokensPerDgram", bd > 0 ? bt / bd : 0);
    out.add("net.udp.batch.flushFull", flushFull_.load());
    out.add("net.udp.batch.flushDeadline", flushDeadline_.load());
    out.add("net.udp.batch.flushDrain", flushDrain_.load());
    out.add("net.udp.batch.flushRetx", flushRetx_.load());
    {
      std::lock_guard<std::mutex> g(m_);
      sender_.addStats(out);
    }
    // Receiver threads are joined by stop() before stats are read.
    for (const proto::Delivery& rx : rx_) rx.addStats(out);
    if (plan_.enabled()) {
      out.add(proto::kFaultDrops, faultDrops_.load());
      out.add(proto::kFaultDups, faultDups_.load());
      out.add(proto::kFaultDelays, faultDelays_.load());
    }
    addLinkStats(out, links_, numPes_);
  }

 private:
  /// One (src,dst) link's sender state: the coalescing outbox (header
  /// space + up to kBatchMaxTokens records) and the wire image of every
  /// unacked record, keyed by link seq, for retransmission. Single fresh
  /// producer (worker src); the timer thread appends retransmits and the
  /// receiver thread for src erases acked images — all under m.
  struct LinkOut {
    std::mutex m;
    std::uint8_t buf[kBatchMaxBytes];
    int count = 0;       // records currently in buf
    int freshCount = 0;  // suffix of count that is first-send (not retx)
    std::uint64_t firstFreshSeq = 0;
    std::uint64_t nextSeq = 0;  // last assigned link sequence
    std::unordered_map<std::uint64_t,
                       std::array<std::uint8_t, kTokenWireBytes>>
        unackedWire;
    /// Retransmit schedule: (deadline, seq) min-heap, consumed lazily (an
    /// acked seq is skipped when its deadline fires). The whole link keeps
    /// at most ~one live Retx timer event — `retxArmed`/`armedDue` dedup
    /// the arming — so the timer heap scales with links, not with batches.
    std::priority_queue<
        std::pair<Clock::time_point, std::uint64_t>,
        std::vector<std::pair<Clock::time_point, std::uint64_t>>,
        std::greater<std::pair<Clock::time_point, std::uint64_t>>>
        retxQ;
    bool retxArmed = false;
    Clock::time_point armedDue{};
  };

  enum class FlushWhy : std::uint8_t { Full, Drain, Deadline, Retx };

  struct TimerEv {
    Clock::time_point due;
    enum class Kind : std::uint8_t { Retx, Flush, DelayedWire } kind =
        Kind::Retx;
    int fromPe = 0;
    int toPe = 0;
    std::vector<std::uint8_t> wire;  // DelayedWire: parked datagram
  };
  struct EvLater {
    bool operator()(const TimerEv& a, const TimerEv& b) const {
      return a.due > b.due;
    }
  };

  static std::string errnoStr() { return std::strerror(errno); }

  LinkStat& link(int fromPe, int toPe) {
    return links_[static_cast<std::size_t>(fromPe * numPes_ + toPe)];
  }

  std::size_t slot(int fromPe, int toPe) const {
    return static_cast<std::size_t>(fromPe * numPes_ + toPe);
  }

  /// Outboxes allocate lazily (256 PEs all-to-all would be ~90 MB up
  /// front). Only the link's sending worker creates it, so the publication
  /// is a plain release store; every other thread reaches the link only
  /// after a send has happened.
  LinkOut& linkOut(int fromPe, int toPe) {
    std::atomic<LinkOut*>& cell = outSlots_[slot(fromPe, toPe)];
    LinkOut* lk = cell.load(std::memory_order_acquire);
    if (!lk) {
      lk = new LinkOut();
      cell.store(lk, std::memory_order_release);
    }
    return *lk;
  }

  LinkOut* linkOutIfExists(int fromPe, int toPe) {
    return outSlots_[slot(fromPe, toPe)].load(std::memory_order_acquire);
  }

  void closeAll() {
    for (int& fd : fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    fds_.clear();
  }

  /// Raw datagram transmission from `fromPe`'s socket. EINTR always
  /// retries; a transiently full stack (EAGAIN/ENOBUFS) gets a few yields
  /// before the failure is counted and treated as network loss — the
  /// retransmit timers recover token batches, re-acking recovers acks.
  void rawSend(int fromPe, const sockaddr_in& to, socklen_t toLen,
               const void* data, std::size_t len) {
    for (int attempt = 0;; ++attempt) {
      const ssize_t n =
          ::sendto(fds_[static_cast<std::size_t>(fromPe)], data, len, 0,
                   reinterpret_cast<const sockaddr*>(&to), toLen);
      if (n >= 0) return;
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) &&
          attempt < 4) {
        std::this_thread::yield();
        continue;
      }
      sendErrors_.fetch_add(1);
      return;
    }
  }

  void xmitWire(int fromPe, int toPe, const std::uint8_t* data,
                std::size_t len) {
    rawSend(fromPe, addrs_[static_cast<std::size_t>(toPe)],
            sizeof(sockaddr_in), data, len);
    LinkStat& l = link(fromPe, toPe);
    l.datagrams.fetch_add(1);
    l.bytes.fetch_add(static_cast<std::int64_t>(len));
    datagramsSent_.fetch_add(1);
    bytesSent_.fetch_add(static_cast<std::int64_t>(len));
  }

  /// One transmission attempt of a batch datagram: rolls the seeded dice
  /// when fault injection is on, otherwise just sends. Drop suppresses the
  /// whole batch and relies on the per-token retransmit timers to recover.
  void attemptTransmit(int fromPe, int toPe, const std::uint8_t* data,
                       std::size_t len) {
    if (plan_.enabled()) {
      switch (plan_.action(txSeq_.fetch_add(1) + 1)) {
        case FaultAction::Drop:
          faultDrops_.fetch_add(1);
          return;
        case FaultAction::Duplicate:
          faultDups_.fetch_add(1);
          xmitWire(fromPe, toPe, data, len);
          break;  // fall through to the normal copy below
        case FaultAction::Delay: {
          faultDelays_.fetch_add(1);
          TimerEv ev;
          ev.due = Clock::now() + micros(plan_.config().nativeDelayUs);
          ev.kind = TimerEv::Kind::DelayedWire;
          ev.fromPe = fromPe;
          ev.toPe = toPe;
          ev.wire.assign(data, data + len);
          pushTimerEv(std::move(ev));
          return;
        }
        case FaultAction::Deliver:
          break;
      }
    }
    xmitWire(fromPe, toPe, data, len);
  }

  /// Pushes a timer event, waking the timer thread only when the event
  /// becomes the new earliest deadline — a later event will be seen when
  /// the thread wakes for the current front anyway, and every avoided
  /// notify is an avoided context switch on the send path.
  void pushTimerEv(TimerEv ev) {
    bool newFront = false;
    {
      std::lock_guard<std::mutex> g(m_);
      newFront = heap_.empty() || ev.due < heap_.front().due;
      heap_.push_back(std::move(ev));
      std::push_heap(heap_.begin(), heap_.end(), EvLater{});
    }
    if (newFront) timerCv_.notify_one();
  }

  void armFlushTimer(int fromPe, int toPe) {
    TimerEv ev;
    ev.due = Clock::now() + micros(kFlushDeadlineUs);
    ev.kind = TimerEv::Kind::Flush;
    ev.fromPe = fromPe;
    ev.toPe = toPe;
    pushTimerEv(std::move(ev));
  }

  /// Ships the (fromPe,toPe) outbox as one datagram: snapshot + reset the
  /// outbox under lk.m, register the fresh tokens' retransmit state under
  /// m_, then transmit with no lock held. Returns without sending when a
  /// concurrent flush already emptied the outbox.
  void flushLink(int fromPe, int toPe, FlushWhy why) {
    LinkOut* lkp = linkOutIfExists(fromPe, toPe);
    if (!lkp) return;
    LinkOut& lk = *lkp;
    std::uint8_t dgram[kBatchMaxBytes];
    std::size_t len = 0;
    int count = 0;
    int fresh = 0;
    std::uint64_t firstFreshSeq = 0;
    {
      std::lock_guard<std::mutex> g(lk.m);
      if (lk.count == 0) return;
      count = lk.count;
      fresh = lk.freshCount;
      firstFreshSeq = lk.firstFreshSeq;
      if (count == 1) {
        // Bare legacy token datagram: bit-identical to the pre-batching
        // wire format.
        len = kTokenWireBytes;
        std::memcpy(dgram, lk.buf + kBatchHeaderBytes, len);
      } else {
        lk.buf[0] = kTypeBatch;
        put16(lk.buf + 1, static_cast<std::uint16_t>(fromPe));
        put16(lk.buf + 3, static_cast<std::uint16_t>(count));
        len = kBatchHeaderBytes +
              static_cast<std::size_t>(count) * kTokenWireBytes;
        std::memcpy(dgram, lk.buf, len);
      }
      lk.count = 0;
      lk.freshCount = 0;
      dirtySrc_[fromPe].fetch_sub(1, std::memory_order_release);
    }
    if (fresh > 0) {
      const std::uint64_t firstMsgId =
          proto::Delivery::packLinkMsgId(fromPe, toPe, firstFreshSeq);
      {
        std::lock_guard<std::mutex> g(m_);
        sender_.onSendBatch(firstMsgId, fresh);
      }
      // Schedule the batch's retransmit deadline on the link's own queue;
      // a timer event is pushed only when the link isn't armed yet (or
      // this deadline precedes the armed one) — typically once per burst,
      // not once per batch.
      const auto due = Clock::now() + micros(sender_.initialRtoUs());
      bool arm = false;
      {
        std::lock_guard<std::mutex> g(lk.m);
        for (int i = 0; i < fresh; ++i)
          lk.retxQ.emplace(due,
                           firstFreshSeq + static_cast<std::uint64_t>(i));
        if (!lk.retxArmed || due < lk.armedDue) {
          lk.retxArmed = true;
          lk.armedDue = due;
          arm = true;
        }
      }
      if (arm) {
        TimerEv ev;
        ev.due = due;
        ev.kind = TimerEv::Kind::Retx;
        ev.fromPe = fromPe;
        ev.toPe = toPe;
        pushTimerEv(std::move(ev));
      }
    }
    switch (why) {
      case FlushWhy::Full: flushFull_.fetch_add(1); break;
      case FlushWhy::Drain: flushDrain_.fetch_add(1); break;
      case FlushWhy::Deadline: flushDeadline_.fetch_add(1); break;
      case FlushWhy::Retx: flushRetx_.fetch_add(1); break;
    }
    batchDgrams_.fetch_add(1);
    batchTokens_.fetch_add(count);
    attemptTransmit(fromPe, toPe, dgram, len);
  }

  /// Appends the still-unacked wire images of `msgIds` to their link's
  /// outbox (original msgId — the receiver's window dedups, quiescence was
  /// charged exactly once at the original enqueue) and ships immediately,
  /// letting retransmits ride with any fresh tokens already coalescing.
  void requeueRetransmits(int fromPe, int toPe,
                          const std::vector<std::uint64_t>& msgIds) {
    LinkOut* lkp = linkOutIfExists(fromPe, toPe);
    if (!lkp) return;
    LinkOut& lk = *lkp;
    std::size_t i = 0;
    while (i < msgIds.size()) {
      bool needFlush = false;
      {
        std::lock_guard<std::mutex> g(lk.m);
        for (; i < msgIds.size(); ++i) {
          const std::uint64_t seq =
              proto::Delivery::linkMsgIdSeq(msgIds[i]);
          auto it = lk.unackedWire.find(seq);
          if (it == lk.unackedWire.end()) continue;  // acked meanwhile
          if (lk.count == kBatchMaxTokens) {
            needFlush = true;
            break;
          }
          std::memcpy(lk.buf + kBatchHeaderBytes +
                          static_cast<std::size_t>(lk.count) *
                              kTokenWireBytes,
                      it->second.data(), kTokenWireBytes);
          if (lk.count == 0)
            dirtySrc_[fromPe].fetch_add(1, std::memory_order_release);
          ++lk.count;
          link(fromPe, toPe).retx.fetch_add(1);
        }
      }
      if (needFlush) flushLink(fromPe, toPe, FlushWhy::Retx);
    }
    flushLink(fromPe, toPe, FlushWhy::Retx);
  }

  /// A link's retransmit deadline fired: pop every due (deadline, seq)
  /// entry, let the protocol core decide each one (entries acked since
  /// they were scheduled come back Stale and vanish), requeue the
  /// survivors' wire images, and re-arm a single event at the link's next
  /// outstanding deadline.
  void fireRetx(int fromPe, int toPe) {
    LinkOut* lkp = linkOutIfExists(fromPe, toPe);
    if (!lkp) return;
    LinkOut& lk = *lkp;
    std::vector<std::uint64_t> expired;
    {
      std::lock_guard<std::mutex> g(lk.m);
      const auto now = Clock::now();
      while (!lk.retxQ.empty() && lk.retxQ.top().first <= now) {
        expired.push_back(lk.retxQ.top().second);
        lk.retxQ.pop();
      }
    }
    std::vector<std::uint64_t> again;  // msgIds to retransmit...
    std::vector<double> backoffUs;     // ...and their re-check distances
    int gaveUpAttempt = 0;
    if (!expired.empty()) {
      std::lock_guard<std::mutex> g(m_);
      for (const std::uint64_t seq : expired) {
        const proto::TimeoutDecision d = sender_.onTimeout(
            proto::Delivery::packLinkMsgId(fromPe, toPe, seq));
        if (d.kind == proto::TimeoutDecision::Kind::Stale) continue;
        if (d.kind == proto::TimeoutDecision::Kind::GiveUp) {
          gaveUpAttempt = d.attempt;
          continue;
        }
        again.push_back(proto::Delivery::packLinkMsgId(fromPe, toPe, seq));
        backoffUs.push_back(d.backoffUs);
      }
    }
    if (gaveUpAttempt != 0) {
      sink_.transportFail(
          "udp transport: reliable delivery gave up on a token from worker " +
          std::to_string(fromPe) + " to worker " + std::to_string(toPe) +
          " after " + std::to_string(gaveUpAttempt) + " attempts");
    }
    if (!again.empty()) requeueRetransmits(fromPe, toPe, again);
    bool arm = false;
    Clock::time_point due{};
    {
      std::lock_guard<std::mutex> g(lk.m);
      const auto now = Clock::now();
      for (std::size_t i = 0; i < again.size(); ++i)
        lk.retxQ.emplace(now + micros(backoffUs[i]),
                         proto::Delivery::linkMsgIdSeq(again[i]));
      if (!lk.retxQ.empty()) {
        due = lk.retxQ.top().first;
        lk.retxArmed = true;
        lk.armedDue = due;
        arm = true;
      } else {
        lk.retxArmed = false;
      }
    }
    if (arm) {
      TimerEv ev;
      ev.due = due;
      ev.kind = TimerEv::Kind::Retx;
      ev.fromPe = fromPe;
      ev.toPe = toPe;
      pushTimerEv(std::move(ev));
    }
  }

  /// One cumulative ack datagram for the (srcPe -> ackerPe) link, rolled
  /// through the same fault dice as data (lossy-ack model; Delay is
  /// treated as Deliver — re-acking already covers lateness).
  void sendCumAck(int ackerPe, const sockaddr_in& to, socklen_t toLen,
                  const proto::Delivery::CumAckView& view) {
    std::uint8_t pkt[kCumAckWireBytes];
    pkt[0] = kTypeCumAck;
    put16(pkt + 1, static_cast<std::uint16_t>(ackerPe));
    put64(pkt + 3, view.cum);
    put64(pkt + 11, view.bitmap);
    int copies = 1;
    if (plan_.enabled()) {
      switch (plan_.action(txSeq_.fetch_add(1) + 1)) {
        case FaultAction::Drop:
          faultDrops_.fetch_add(1);
          copies = 0;
          break;
        case FaultAction::Duplicate:
          faultDups_.fetch_add(1);
          copies = 2;
          break;
        default:
          break;
      }
    }
    for (int i = 0; i < copies; ++i) {
      rawSend(ackerPe, to, toLen, pkt, sizeof pkt);
      acksSent_.fetch_add(1);
    }
  }

  /// Receiver loop: one thread polls every PE's socket — the machine's
  /// "NIC". Answers token-carrying datagrams with cumulative acks
  /// (re-acking duplicates so a lost ack self-heals), suppresses
  /// duplicates through the destination PE's protocol-core link windows
  /// (touched only by this thread), and deposits first copies into the
  /// owner's inbox via the service lane — one thread for all PEs keeps
  /// the single-producer-per-lane invariant trivially true and the
  /// machine's thread count (and context-switch pressure) flat in PEs.
  /// Also receives cumulative acks for batches each PE sent.
  void recvMain() {
    std::uint8_t buf[2048];
    std::vector<NToken> toks;
    std::vector<NToken> freshToks;
    // Lazy cumulative acks, per (dstPe, srcPe): a partial batch ends a
    // burst and a duplicate means the sender is already retransmitting —
    // both ack immediately. A stream of FULL batches acks only every
    // kAckLazyTokens tokens (~every 3rd datagram), cutting ack traffic on
    // hot links by two thirds. A full-batch tail that never sees a
    // partial flush is healed by the sender's retransmit: the duplicates
    // force an immediate ack.
    std::vector<std::int64_t> sinceAck(
        static_cast<std::size_t>(numPes_) * numPes_, 0);
    std::vector<pollfd> pfds(static_cast<std::size_t>(numPes_));
    for (int pe = 0; pe < numPes_; ++pe) {
      pfds[static_cast<std::size_t>(pe)].fd = fds_[static_cast<std::size_t>(pe)];
      pfds[static_cast<std::size_t>(pe)].events = POLLIN;
    }
    bool stopping = false;
    while (!stopping) {
      const int nready =
          ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 20);
      if (nready < 0) {
        if (errno == EINTR) continue;
        return;  // sockets gone: shutdown path
      }
      if (nready == 0) {
        if (rxStop_.load()) break;
        continue;
      }
      for (int pe = 0; pe < numPes_; ++pe) {
        if (!(pfds[static_cast<std::size_t>(pe)].revents & POLLIN)) continue;
        for (;;) {
          sockaddr_in src{};
          socklen_t srcLen = sizeof src;
          const ssize_t n = ::recvfrom(
              fds_[static_cast<std::size_t>(pe)], buf, sizeof buf,
              MSG_DONTWAIT, reinterpret_cast<sockaddr*>(&src), &srcLen);
          if (n < 0) {
            if (errno == EINTR) continue;
            break;  // EAGAIN: this socket is drained
          }
          if (n < 1) continue;
          if (!handleDatagram(pe, buf, static_cast<std::size_t>(n), src,
                              srcLen, toks, freshToks, sinceAck))
            stopping = true;  // shutdown wake-up observed after rxStop_
        }
      }
    }
    // The shutdown wake on one socket can overtake acks (or late
    // retransmits) still queued on another — every sendto already made
    // loopback delivery, so one non-blocking sweep drains the ledgers dry
    // and acksSent/acksRecv close exactly on a fault-free run.
    for (int pe = 0; pe < numPes_; ++pe) {
      for (;;) {
        sockaddr_in src{};
        socklen_t srcLen = sizeof src;
        const ssize_t n = ::recvfrom(
            fds_[static_cast<std::size_t>(pe)], buf, sizeof buf,
            MSG_DONTWAIT, reinterpret_cast<sockaddr*>(&src), &srcLen);
        if (n < 0) {
          if (errno == EINTR) continue;
          break;
        }
        if (n < 1) continue;
        handleDatagram(pe, buf, static_cast<std::size_t>(n), src, srcLen,
                       toks, freshToks, sinceAck);
      }
    }
  }

  /// Processes one datagram addressed to `pe`. Returns false only for the
  /// shutdown wake-up after stop() raised rxStop_.
  bool handleDatagram(int pe, std::uint8_t* buf, std::size_t n,
                      const sockaddr_in& src, socklen_t srcLen,
                      std::vector<NToken>& toks,
                      std::vector<NToken>& freshToks,
                      std::vector<std::int64_t>& sinceAck) {
    proto::Delivery& rx = rx_[static_cast<std::size_t>(pe)];
    datagramsRecv_.fetch_add(1);
    bytesRecv_.fetch_add(static_cast<std::int64_t>(n));
    switch (buf[0]) {
        case kTypeToken:
      case kTypeBatch: {
        std::uint16_t srcPe = 0;
        if (!wireDecodeBatch(buf, n, toks, &srcPe) || srcPe >= numPes_) {
          badDatagrams_.fetch_add(1);
          break;
        }
        freshToks.clear();
        for (NToken& tok : toks) {
          const std::uint64_t seq = proto::Delivery::linkMsgIdSeq(tok.msgId);
          if (rx.acceptSeq(srcPe, pe, seq))
            freshToks.push_back(std::move(tok));
        }
        // The ack (when due) is composed after the window update and
        // sent before the deposits, so at termination the final ack is
        // already in flight toward the sender's socket.
        const bool full = static_cast<int>(toks.size()) == kBatchMaxTokens;
        const bool hadDup = freshToks.size() != toks.size();
        std::int64_t& since =
            sinceAck[static_cast<std::size_t>(pe) * numPes_ + srcPe];
        since += static_cast<std::int64_t>(toks.size());
        if (!full || hadDup || since >= kAckLazyTokens) {
          rx.count(proto::kAcks);
          sendCumAck(pe, src, srcLen, rx.cumAckView(srcPe, pe));
          since = 0;
        }
        for (NToken& tok : freshToks) {
          // Receiver dedup MUST precede the ring deposit: a retransmitted
          // token that reached the inbox twice would double-release its
          // single quiescence charge.
          PODS_CHECK_MSG(
              rx.seenSeq(srcPe, pe, proto::Delivery::linkMsgIdSeq(tok.msgId)),
              "udp transport: token deposited before dedup recorded it");
          sink_.deposit(pe, numPes_, std::move(tok));
        }
        break;
      }
      case kTypeCumAck: {
        if (n != kCumAckWireBytes) {
          badDatagrams_.fetch_add(1);
          break;
        }
        const std::uint16_t acker = get16(buf + 1);
        if (acker >= numPes_) {
          badDatagrams_.fetch_add(1);
          break;
        }
        acksRecv_.fetch_add(1);
        const std::uint64_t cum = get64(buf + 3);
        const std::uint64_t bitmap = get64(buf + 11);
        std::vector<std::uint64_t> retired;
        {
          std::lock_guard<std::mutex> g(m_);
          retired = sender_.onCumAck(pe, acker, cum, bitmap);
        }
        if (!retired.empty()) {
          if (LinkOut* lk = linkOutIfExists(pe, acker)) {
            std::lock_guard<std::mutex> g(lk->m);
            for (const std::uint64_t id : retired)
              lk->unackedWire.erase(proto::Delivery::linkMsgIdSeq(id));
          }
        }
        break;
      }
      case kTypeShutdown:
        // Teardown trust: the shutdown wake-up is only ever self-sent from
        // this PE's own socket in stop(). Accepting it from an arbitrary
        // endpoint would let any process that discovers the ephemeral port
        // wedge the receiver sweep early — validate the sender.
        if (src.sin_addr.s_addr !=
                addrs_[static_cast<std::size_t>(pe)].sin_addr.s_addr ||
            src.sin_port != addrs_[static_cast<std::size_t>(pe)].sin_port) {
          badDatagrams_.fetch_add(1);
          break;
        }
        if (rxStop_.load()) return false;
        break;
      case kTypeLegacyAck:  // retired per-message ack: reject, don't parse
      default:
        badDatagrams_.fetch_add(1);
        break;
    }
    return true;
  }

  /// Timer loop: drives flush deadlines for partially-filled outboxes,
  /// retransmit batches for unacked tokens (fresh dice per flush,
  /// exponential backoff, give-up after maxAttempts fails the run), and
  /// fault-injected delayed sends (the original wire image, no dice).
  void timerMain() {
    std::unique_lock<std::mutex> g(m_);
    while (!timerStop_) {
      if (heap_.empty()) {
        timerCv_.wait(g, [&] { return timerStop_ || !heap_.empty(); });
        continue;
      }
      const auto due = heap_.front().due;
      if (timerCv_.wait_until(g, due, [&] {
            return timerStop_ || heap_.front().due < due;
          })) {
        if (timerStop_) break;
        continue;  // an earlier event was parked; recompute the sleep
      }
      while (!heap_.empty() && heap_.front().due <= Clock::now()) {
        std::pop_heap(heap_.begin(), heap_.end(), EvLater{});
        TimerEv ev = std::move(heap_.back());
        heap_.pop_back();
        switch (ev.kind) {
          case TimerEv::Kind::Flush:
            g.unlock();
            flushLink(ev.fromPe, ev.toPe, FlushWhy::Deadline);
            g.lock();
            break;
          case TimerEv::Kind::DelayedWire:
            g.unlock();
            xmitWire(ev.fromPe, ev.toPe, ev.wire.data(), ev.wire.size());
            g.lock();
            break;
          case TimerEv::Kind::Retx:
            g.unlock();
            fireRetx(ev.fromPe, ev.toPe);
            g.lock();
            break;
        }
      }
    }
  }

  TransportSink& sink_;
  FaultPlan plan_;
  const int numPes_;
  std::vector<LinkStat> links_;
  /// Protocol core endpoints: sender half under m_, one receiver half per
  /// PE owned by its receiver thread (read by addStats after join).
  proto::Delivery sender_;
  std::vector<proto::Delivery> rx_;
  /// Per-link outboxes (lazily allocated; see linkOut) and a per-source
  /// count of non-empty ones so the worker-loop flush is one atomic load
  /// when nothing is pending.
  std::unique_ptr<std::atomic<LinkOut*>[]> outSlots_;
  std::unique_ptr<std::atomic<int>[]> dirtySrc_;

  std::vector<int> fds_;
  std::vector<sockaddr_in> addrs_;
  std::thread rxThread_;
  std::thread timerThread_;
  std::atomic<bool> rxStop_{false};

  mutable std::mutex m_;  // guards heap_, timerStop_, sender_
  std::condition_variable timerCv_;
  std::vector<TimerEv> heap_;  // min-heap on due (std::push_heap/pop_heap)
  bool timerStop_ = false;

  std::atomic<std::uint64_t> txSeq_{0};
  std::atomic<std::int64_t> tokensSent_{0};
  std::atomic<std::int64_t> datagramsSent_{0};
  std::atomic<std::int64_t> bytesSent_{0};
  std::atomic<std::int64_t> datagramsRecv_{0};
  std::atomic<std::int64_t> bytesRecv_{0};
  std::atomic<std::int64_t> acksSent_{0};
  std::atomic<std::int64_t> acksRecv_{0};
  std::atomic<std::int64_t> sendErrors_{0};
  std::atomic<std::int64_t> badDatagrams_{0};
  std::atomic<std::int64_t> batchDgrams_{0};
  std::atomic<std::int64_t> batchTokens_{0};
  std::atomic<std::int64_t> flushFull_{0};
  std::atomic<std::int64_t> flushDeadline_{0};
  std::atomic<std::int64_t> flushDrain_{0};
  std::atomic<std::int64_t> flushRetx_{0};
  std::atomic<std::int64_t> faultDrops_{0};
  std::atomic<std::int64_t> faultDups_{0};
  std::atomic<std::int64_t> faultDelays_{0};
};

// ---------------------------------------------------------------------------
// UdpMultiprocTransport: the worker-process side of --transport=udp-multiproc.
//
// Same batch/cumulative-ack protocol as UdpTransport, with four differences
// forced by PEs being separate killable processes:
//
//   socket   this process owns exactly ONE socket, created+bound by the
//            supervisor and inherited across fork. The supervisor keeps its
//            own fd copy, so the port binding and any datagrams buffered in
//            the kernel survive a kill -9 of this process — the socket is
//            the paper's "NIC outlives the PE". Peers are addressed by the
//            fixed loopback port table from the Boot message.
//   epochs   every data datagram and ack carries the sender incarnation.
//            A respawned worker boots with epoch+1 and renumbers all of its
//            links from seq 1; receivers reset the link's receive window the
//            first time they see a higher epoch from a source (the logical
//            dedup ledgers absorb the replayed payloads), and a reborn
//            sender drops acks stamped with its predecessor's epoch.
//   output   a token may be ACKED only once its Recv record is stable at
//   commit   the supervisor (an acked-but-unlogged token would never be
//            retransmitted and would vanish with the next kill), and an
//            outbox may be FLUSHED only once the log records that preceded
//            the sends are stable (the NEWCTX/ALLOC mints behind a send are
//            not replay-stable until logged). Both gates hang off the
//            WorkerLink stable watermark and are retried by the worker
//            loop's 1 ms poll and by onStableAdvance().
//   faults   no datagram dice: fault injection (including the kill plan)
//            is the SUPERVISOR's job in this mode — it SIGKILLs whole
//            processes; drop/dup/delay arrive zeroed in the worker's
//            FaultConfig (the retry policy rides along unchanged).
// ---------------------------------------------------------------------------

class UdpMultiprocTransport final : public Transport {
 public:
  UdpMultiprocTransport(TransportSink& sink, const FaultPlan& plan, int numPes,
                        int localPe, std::uint8_t epoch, int sockFd,
                        const std::vector<std::uint16_t>& peerPorts,
                        WorkerLink* link)
      : sink_(sink),
        numPes_(numPes),
        me_(localPe),
        epoch_(epoch),
        fd_(sockFd),
        link_(link),
        links_(static_cast<std::size_t>(numPes) * numPes),
        sender_(plan.config().retry, plan.enabled()),
        rx_(plan.config().retry, plan.enabled()),
        knownEpoch_(static_cast<std::size_t>(numPes), 0) {
    addrs_.assign(static_cast<std::size_t>(numPes), sockaddr_in{});
    for (int pe = 0; pe < numPes; ++pe) {
      sockaddr_in& sa = addrs_[static_cast<std::size_t>(pe)];
      sa.sin_family = AF_INET;
      sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      sa.sin_port = htons(peerPorts[static_cast<std::size_t>(pe)]);
    }
    out_.reserve(static_cast<std::size_t>(numPes));
    acks_.reserve(static_cast<std::size_t>(numPes));
    for (int pe = 0; pe < numPes; ++pe) {
      out_.push_back(std::make_unique<LinkOut>());
      acks_.push_back(std::make_unique<AckState>());
    }
  }

  ~UdpMultiprocTransport() override { stop(); }

  const char* name() const override { return "udp-multiproc"; }

  bool start(std::string* err) override {
    if (fd_ < 0) {
      if (err) *err = "udp-multiproc transport: no inherited socket fd";
      return false;
    }
    int rcvbuf = 4 << 20;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    // Bounded block so the receiver notices rxStop_ without a wake datagram
    // (a respawned sibling may hold stale addresses; self-wakes are the one
    // thing the teardown-trust rule forbids accepting blindly).
    timeval tv{};
    tv.tv_usec = 20000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    rxThread_ = std::thread([this] { recvMain(); });
    timerThread_ = std::thread([this] { timerMain(); });
    return true;
  }

  void send(int fromPe, int toPe, NToken tok) override {
    PODS_CHECK_MSG(fromPe == me_, "multiproc transport: send from foreign PE");
    LinkOut& lk = *out_[static_cast<std::size_t>(toPe)];
    link(fromPe, toPe).tokens.fetch_add(1);
    tokensSent_.fetch_add(1);
    bool wrote = false;
    bool full = false;
    bool first = false;
    while (!wrote) {
      {
        std::lock_guard<std::mutex> g(lk.m);
        if (lk.count < kBatchMaxTokens) {
          const std::uint64_t seq = ++lk.nextSeq;
          tok.msgId = proto::Delivery::packLinkMsgId(fromPe, toPe, seq);
          std::uint8_t* rec =
              lk.buf + kBatchEHeaderBytes +
              static_cast<std::size_t>(lk.count) * kTokenWireBytes;
          wireEncodeToken(tok, static_cast<std::uint16_t>(fromPe), rec);
          std::memcpy(lk.unackedWire[seq].data(), rec, kTokenWireBytes);
          // Output commit: everything this token's payload may depend on
          // (mints, received tokens) is in the log stream by now — the
          // batch must not hit the wire before that prefix is stable.
          if (link_) lk.gateSeq = link_->logAppended();
          if (lk.count == 0) {
            first = true;
            dirty_.fetch_add(1, std::memory_order_release);
          }
          if (lk.freshCount == 0) lk.firstFreshSeq = seq;
          ++lk.count;
          ++lk.freshCount;
          full = lk.count == kBatchMaxTokens;
          wrote = true;
        }
      }
      if (!wrote) flushLink(toPe, FlushWhy::Full);
    }
    if (full)
      flushLink(toPe, FlushWhy::Full);
    else if (first)
      armFlushTimer(toPe);
  }

  void flush(int fromPe) override {
    (void)fromPe;
    if (dirty_.load(std::memory_order_acquire) == 0) return;
    for (int to = 0; to < numPes_; ++to) {
      if (to == me_) continue;
      flushLink(to, FlushWhy::Drain);
    }
  }

  void stop() override {
    if (!rxThread_.joinable() && !timerThread_.joinable()) return;
    rxStop_.store(true);
    {
      std::lock_guard<std::mutex> g(m_);
      timerStop_ = true;
    }
    timerCv_.notify_all();
    if (rxThread_.joinable()) rxThread_.join();
    if (timerThread_.joinable()) timerThread_.join();
    // fd_ stays open: the supervisor owns the socket's lifetime.
  }

  void addStats(Counters& out) const override {
    out.add("net.udp.tokensSent", tokensSent_.load());
    out.add("net.udp.datagramsSent", datagramsSent_.load());
    out.add("net.udp.bytesSent", bytesSent_.load());
    out.add("net.udp.datagramsRecv", datagramsRecv_.load());
    out.add("net.udp.bytesRecv", bytesRecv_.load());
    out.add("net.udp.acksSent", acksSent_.load());
    out.add("net.udp.acksRecv", acksRecv_.load());
    out.add("net.udp.sendErrors", sendErrors_.load());
    out.add("net.udp.badDatagrams", badDatagrams_.load());
    out.add("net.udp.staleEpoch", staleEpoch_.load());
    out.add("net.udp.staleAcks", staleAcks_.load());
    out.add("net.udp.gatedFlushes", gatedFlushes_.load());
    const std::int64_t bd = batchDgrams_.load();
    const std::int64_t bt = batchTokens_.load();
    out.add("net.udp.batch.datagrams", bd);
    out.add("net.udp.batch.tokens", bt);
    out.add("net.udp.batch.tokensPerDgram", bd > 0 ? bt / bd : 0);
    out.add("net.udp.batch.flushFull", flushFull_.load());
    out.add("net.udp.batch.flushDeadline", flushDeadline_.load());
    out.add("net.udp.batch.flushDrain", flushDrain_.load());
    out.add("net.udp.batch.flushRetx", flushRetx_.load());
    {
      std::lock_guard<std::mutex> g(m_);
      sender_.addStats(out);
    }
    rx_.addStats(out);
    addLinkStats(out, links_, numPes_);
  }

  // ---- Multi-process hooks -------------------------------------------

  void noteDrained(std::uint64_t msgId, std::uint8_t epoch,
                   std::uint64_t logSeq) override {
    if (msgId == 0) return;  // local delivery: nothing to ack
    const int src = static_cast<int>(msgId >> 56) & 0xFF;
    AckState& ack = *acks_[static_cast<std::size_t>(src)];
    std::lock_guard<std::mutex> g(ack.m);
    // A token from a dead incarnation needs no ack — its sender is gone and
    // the reborn one re-sends under the new epoch.
    if (epoch != ack.epoch) return;
    ack.pend.push_back({proto::Delivery::linkMsgIdSeq(msgId), logSeq});
    ack.due.store(true, std::memory_order_release);
  }

  void pumpAcks() override {
    const std::uint64_t stable =
        link_ ? link_->logStable() : ~std::uint64_t{0};
    for (int src = 0; src < numPes_; ++src) {
      if (src == me_) continue;
      AckState& ack = *acks_[static_cast<std::size_t>(src)];
      if (!ack.due.load(std::memory_order_acquire)) continue;
      proto::Delivery::CumAckView view;
      std::uint8_t epoch = 0;
      bool moved = false;
      {
        std::lock_guard<std::mutex> g(ack.m);
        while (!ack.pend.empty() && ack.pend.front().logSeq <= stable) {
          ack.win.acceptSeq(src, me_, ack.pend.front().seq);
          ack.pend.pop_front();
          moved = true;
        }
        if (ack.pend.empty()) ack.due.store(false, std::memory_order_release);
        if (moved) {
          view = ack.win.cumAckView(src, me_);
          epoch = ack.epoch;
        }
      }
      if (moved) sendCumAckE(src, view, epoch);
    }
  }

  void onStableAdvance() override {
    flush(me_);
    pumpAcks();
  }

  std::int64_t outstanding() const override {
    std::int64_t n = 0;
    for (int to = 0; to < numPes_; ++to) {
      if (to == me_) continue;
      LinkOut& lk = *out_[static_cast<std::size_t>(to)];
      std::lock_guard<std::mutex> g(lk.m);
      n += lk.count;
    }
    {
      std::lock_guard<std::mutex> g(m_);
      n += static_cast<std::int64_t>(sender_.windowSize());
    }
    return n;
  }

  void primeRecv(std::uint64_t msgId, std::uint8_t epoch) override {
    // Pre-start rebuild (no threads yet). The log replays in receive order,
    // so per-source epochs are non-decreasing: only the newest incarnation's
    // stream is rebuilt — older streams died with their senders.
    const int src = static_cast<int>(msgId >> 56) & 0xFF;
    AckState& ack = *acks_[static_cast<std::size_t>(src)];
    if (epoch < knownEpoch_[static_cast<std::size_t>(src)]) return;
    if (epoch > knownEpoch_[static_cast<std::size_t>(src)]) {
      knownEpoch_[static_cast<std::size_t>(src)] = epoch;
      rx_.resetRecvLink(src, me_);
      ack.win = proto::Delivery();
      ack.epoch = epoch;
    }
    const std::uint64_t seq = proto::Delivery::linkMsgIdSeq(msgId);
    rx_.acceptSeq(src, me_, seq);
    ack.win.acceptSeq(src, me_, seq);
  }

  void barrierSnapshot(std::vector<std::uint64_t>& out) override {
    out.assign(static_cast<std::size_t>(numPes_), 0);
    for (int to = 0; to < numPes_; ++to) {
      if (to == me_) continue;
      LinkOut& lk = *out_[static_cast<std::size_t>(to)];
      std::lock_guard<std::mutex> g(lk.m);
      out[static_cast<std::size_t>(to)] = lk.nextSeq;
    }
  }

  bool barrierPassed(const std::vector<std::uint64_t>& snap) override {
    for (int to = 0; to < numPes_; ++to) {
      if (to == me_ || snap[static_cast<std::size_t>(to)] == 0) continue;
      {
        std::lock_guard<std::mutex> g(m_);
        const std::uint64_t low = sender_.lowestUnackedSeq(me_, to);
        if (low != 0 && low <= snap[static_cast<std::size_t>(to)])
          return false;
      }
      // Tokens still coalescing (or gate-parked) in the outbox are not in
      // the sender window yet — lowestUnackedSeq alone would pass early.
      LinkOut& lk = *out_[static_cast<std::size_t>(to)];
      std::lock_guard<std::mutex> g(lk.m);
      if (lk.freshCount > 0 &&
          lk.firstFreshSeq <= snap[static_cast<std::size_t>(to)])
        return false;
    }
    return true;
  }

 private:
  struct LinkOut {
    std::mutex m;
    std::uint8_t buf[kBatchMaxBytes];
    int count = 0;
    int freshCount = 0;
    std::uint64_t firstFreshSeq = 0;
    std::uint64_t nextSeq = 0;
    /// Output-commit gate: log stream position that must be stable before
    /// this outbox may hit the wire (high-water over its parked tokens).
    std::uint64_t gateSeq = 0;
    std::unordered_map<std::uint64_t,
                       std::array<std::uint8_t, kTokenWireBytes>>
        unackedWire;
    std::priority_queue<
        std::pair<Clock::time_point, std::uint64_t>,
        std::vector<std::pair<Clock::time_point, std::uint64_t>>,
        std::greater<std::pair<Clock::time_point, std::uint64_t>>>
        retxQ;
    bool retxArmed = false;
    Clock::time_point armedDue{};
  };

  /// Ack gating state for one source PE. The rx thread deposits and wire-
  /// dedups but never acks fresh tokens; the worker thread reports each
  /// drain (with its Recv record's stream position) and pumpAcks() moves
  /// entries into the ackable window `win` once the supervisor has made
  /// their records stable.
  struct AckState {
    std::mutex m;
    struct Pend {
      std::uint64_t seq;
      std::uint64_t logSeq;
    };
    std::deque<Pend> pend;
    proto::Delivery win;      // ackable window: stable-logged seqs only
    std::uint8_t epoch = 0;   // sender incarnation the window belongs to
    std::atomic<bool> due{false};
  };

  enum class FlushWhy : std::uint8_t { Full, Drain, Deadline, Retx };

  struct TimerEv {
    Clock::time_point due;
    enum class Kind : std::uint8_t { Retx, Flush } kind = Kind::Retx;
    int toPe = 0;
  };
  struct EvLater {
    bool operator()(const TimerEv& a, const TimerEv& b) const {
      return a.due > b.due;
    }
  };

  LinkStat& link(int fromPe, int toPe) {
    return links_[static_cast<std::size_t>(fromPe * numPes_ + toPe)];
  }

  void rawSend(const sockaddr_in& to, const void* data, std::size_t len) {
    for (int attempt = 0;; ++attempt) {
      const ssize_t n = ::sendto(fd_, data, len, 0,
                                 reinterpret_cast<const sockaddr*>(&to),
                                 sizeof to);
      if (n >= 0) return;
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) &&
          attempt < 4) {
        std::this_thread::yield();
        continue;
      }
      sendErrors_.fetch_add(1);
      return;
    }
  }

  void xmitWire(int toPe, const std::uint8_t* data, std::size_t len) {
    rawSend(addrs_[static_cast<std::size_t>(toPe)], data, len);
    LinkStat& l = link(me_, toPe);
    l.datagrams.fetch_add(1);
    l.bytes.fetch_add(static_cast<std::int64_t>(len));
    datagramsSent_.fetch_add(1);
    bytesSent_.fetch_add(static_cast<std::int64_t>(len));
  }

  void pushTimerEv(TimerEv ev) {
    bool newFront = false;
    {
      std::lock_guard<std::mutex> g(m_);
      newFront = heap_.empty() || ev.due < heap_.front().due;
      heap_.push_back(std::move(ev));
      std::push_heap(heap_.begin(), heap_.end(), EvLater{});
    }
    if (newFront) timerCv_.notify_one();
  }

  void armFlushTimer(int toPe) {
    TimerEv ev;
    ev.due = Clock::now() + micros(kFlushDeadlineUs);
    ev.kind = TimerEv::Kind::Flush;
    ev.toPe = toPe;
    pushTimerEv(std::move(ev));
  }

  void flushLink(int toPe, FlushWhy why) {
    LinkOut& lk = *out_[static_cast<std::size_t>(toPe)];
    std::uint8_t dgram[kBatchMaxBytes];
    std::size_t len = 0;
    int count = 0;
    int fresh = 0;
    std::uint64_t firstFreshSeq = 0;
    {
      std::lock_guard<std::mutex> g(lk.m);
      if (lk.count == 0) return;
      if (link_ && link_->logStable() < lk.gateSeq) {
        // Output commit: the log prefix behind these sends is not stable
        // yet. Retried by the worker loop's poll and onStableAdvance().
        gatedFlushes_.fetch_add(1);
        return;
      }
      count = lk.count;
      fresh = lk.freshCount;
      firstFreshSeq = lk.firstFreshSeq;
      lk.buf[0] = kTypeBatchE;
      put16(lk.buf + 1, static_cast<std::uint16_t>(me_));
      put16(lk.buf + 3, static_cast<std::uint16_t>(count));
      lk.buf[5] = epoch_;
      len = kBatchEHeaderBytes +
            static_cast<std::size_t>(count) * kTokenWireBytes;
      std::memcpy(dgram, lk.buf, len);
      lk.count = 0;
      lk.freshCount = 0;
      dirty_.fetch_sub(1, std::memory_order_release);
    }
    if (fresh > 0) {
      const std::uint64_t firstMsgId =
          proto::Delivery::packLinkMsgId(me_, toPe, firstFreshSeq);
      {
        std::lock_guard<std::mutex> g(m_);
        sender_.onSendBatch(firstMsgId, fresh);
      }
      const auto due = Clock::now() + micros(sender_.initialRtoUs());
      bool arm = false;
      {
        std::lock_guard<std::mutex> g(lk.m);
        for (int i = 0; i < fresh; ++i)
          lk.retxQ.emplace(due,
                           firstFreshSeq + static_cast<std::uint64_t>(i));
        if (!lk.retxArmed || due < lk.armedDue) {
          lk.retxArmed = true;
          lk.armedDue = due;
          arm = true;
        }
      }
      if (arm) {
        TimerEv ev;
        ev.due = due;
        ev.kind = TimerEv::Kind::Retx;
        ev.toPe = toPe;
        pushTimerEv(std::move(ev));
      }
    }
    switch (why) {
      case FlushWhy::Full: flushFull_.fetch_add(1); break;
      case FlushWhy::Drain: flushDrain_.fetch_add(1); break;
      case FlushWhy::Deadline: flushDeadline_.fetch_add(1); break;
      case FlushWhy::Retx: flushRetx_.fetch_add(1); break;
    }
    batchDgrams_.fetch_add(1);
    batchTokens_.fetch_add(count);
    xmitWire(toPe, dgram, len);
  }

  void requeueRetransmits(int toPe, const std::vector<std::uint64_t>& msgIds) {
    LinkOut& lk = *out_[static_cast<std::size_t>(toPe)];
    std::size_t i = 0;
    while (i < msgIds.size()) {
      bool needFlush = false;
      {
        std::lock_guard<std::mutex> g(lk.m);
        for (; i < msgIds.size(); ++i) {
          const std::uint64_t seq = proto::Delivery::linkMsgIdSeq(msgIds[i]);
          auto it = lk.unackedWire.find(seq);
          if (it == lk.unackedWire.end()) continue;  // acked meanwhile
          if (lk.count == kBatchMaxTokens) {
            needFlush = true;
            break;
          }
          std::memcpy(lk.buf + kBatchEHeaderBytes +
                          static_cast<std::size_t>(lk.count) * kTokenWireBytes,
                      it->second.data(), kTokenWireBytes);
          if (lk.count == 0) dirty_.fetch_add(1, std::memory_order_release);
          ++lk.count;
          link(me_, toPe).retx.fetch_add(1);
        }
      }
      if (needFlush) flushLink(toPe, FlushWhy::Retx);
    }
    flushLink(toPe, FlushWhy::Retx);
  }

  void fireRetx(int toPe) {
    LinkOut& lk = *out_[static_cast<std::size_t>(toPe)];
    std::vector<std::uint64_t> expired;
    {
      std::lock_guard<std::mutex> g(lk.m);
      const auto now = Clock::now();
      while (!lk.retxQ.empty() && lk.retxQ.top().first <= now) {
        expired.push_back(lk.retxQ.top().second);
        lk.retxQ.pop();
      }
    }
    std::vector<std::uint64_t> again;
    std::vector<double> backoffUs;
    int gaveUpAttempt = 0;
    if (!expired.empty()) {
      std::lock_guard<std::mutex> g(m_);
      for (const std::uint64_t seq : expired) {
        const proto::TimeoutDecision d = sender_.onTimeout(
            proto::Delivery::packLinkMsgId(me_, toPe, seq));
        if (d.kind == proto::TimeoutDecision::Kind::Stale) continue;
        if (d.kind == proto::TimeoutDecision::Kind::GiveUp) {
          gaveUpAttempt = d.attempt;
          continue;
        }
        again.push_back(proto::Delivery::packLinkMsgId(me_, toPe, seq));
        backoffUs.push_back(d.backoffUs);
      }
    }
    if (gaveUpAttempt != 0) {
      sink_.transportFail(
          "udp-multiproc transport: reliable delivery gave up on a token "
          "from worker " +
          std::to_string(me_) + " to worker " + std::to_string(toPe) +
          " after " + std::to_string(gaveUpAttempt) + " attempts");
    }
    if (!again.empty()) requeueRetransmits(toPe, again);
    bool arm = false;
    Clock::time_point due{};
    {
      std::lock_guard<std::mutex> g(lk.m);
      const auto now = Clock::now();
      for (std::size_t i = 0; i < again.size(); ++i)
        lk.retxQ.emplace(now + micros(backoffUs[i]),
                         proto::Delivery::linkMsgIdSeq(again[i]));
      if (!lk.retxQ.empty()) {
        due = lk.retxQ.top().first;
        lk.retxArmed = true;
        lk.armedDue = due;
        arm = true;
      } else {
        lk.retxArmed = false;
      }
    }
    if (arm) {
      TimerEv ev;
      ev.due = due;
      ev.kind = TimerEv::Kind::Retx;
      ev.toPe = toPe;
      pushTimerEv(std::move(ev));
    }
  }

  void sendCumAckE(int srcPe, const proto::Delivery::CumAckView& view,
                   std::uint8_t epoch) {
    std::uint8_t pkt[kCumAckEWireBytes];
    pkt[0] = kTypeCumAckE;
    put16(pkt + 1, static_cast<std::uint16_t>(me_));
    put64(pkt + 3, view.cum);
    put64(pkt + 11, view.bitmap);
    pkt[19] = epoch;
    rawSend(addrs_[static_cast<std::size_t>(srcPe)], pkt, sizeof pkt);
    acksSent_.fetch_add(1);
  }

  void recvMain() {
    std::uint8_t buf[2048];
    std::vector<NToken> toks;
    while (!rxStop_.load()) {
      sockaddr_in src{};
      socklen_t srcLen = sizeof src;
      const ssize_t n =
          ::recvfrom(fd_, buf, sizeof buf, 0,
                     reinterpret_cast<sockaddr*>(&src), &srcLen);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
          continue;  // SO_RCVTIMEO tick: re-check the stop flag
        return;      // socket gone
      }
      if (n < 1) continue;
      handleDatagram(buf, static_cast<std::size_t>(n));
    }
    // Final non-blocking sweep (acks queued behind the last poll).
    for (;;) {
      sockaddr_in src{};
      socklen_t srcLen = sizeof src;
      const ssize_t n =
          ::recvfrom(fd_, buf, sizeof buf, MSG_DONTWAIT,
                     reinterpret_cast<sockaddr*>(&src), &srcLen);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n < 1) continue;
      handleDatagram(buf, static_cast<std::size_t>(n));
    }
  }

  void handleDatagram(std::uint8_t* buf, std::size_t n) {
    datagramsRecv_.fetch_add(1);
    bytesRecv_.fetch_add(static_cast<std::int64_t>(n));
    switch (buf[0]) {
      case kTypeBatchE: {
        if (n < kBatchEHeaderBytes) {
          badDatagrams_.fetch_add(1);
          break;
        }
        const std::uint16_t srcPe = get16(buf + 1);
        const int count = get16(buf + 3);
        const std::uint8_t e = buf[5];
        if (srcPe >= numPes_ || srcPe == me_ || count < 1 ||
            count > kBatchMaxTokens ||
            n != kBatchEHeaderBytes +
                     static_cast<std::size_t>(count) * kTokenWireBytes) {
          badDatagrams_.fetch_add(1);
          break;
        }
        // All-or-nothing decode before any window mutation.
        std::vector<NToken> toks;
        toks.reserve(static_cast<std::size_t>(count));
        bool ok = true;
        for (int i = 0; i < count; ++i) {
          NToken tok;
          std::uint16_t recSrc = 0;
          if (!wireDecodeToken(buf + kBatchEHeaderBytes +
                                   static_cast<std::size_t>(i) *
                                       kTokenWireBytes,
                               kTokenWireBytes, tok, &recSrc) ||
              recSrc != srcPe) {
            ok = false;
            break;
          }
          tok.epoch = e;
          toks.push_back(tok);
        }
        if (!ok) {
          badDatagrams_.fetch_add(1);
          break;
        }
        AckState& ack = *acks_[static_cast<std::size_t>(srcPe)];
        if (e < knownEpoch_[static_cast<std::size_t>(srcPe)]) {
          // The sender of this datagram is dead; its reborn successor
          // renumbered the link. Nothing from the old stream may touch the
          // new windows.
          staleEpoch_.fetch_add(1);
          break;
        }
        if (e > knownEpoch_[static_cast<std::size_t>(srcPe)]) {
          knownEpoch_[static_cast<std::size_t>(srcPe)] = e;
          rx_.resetRecvLink(srcPe, me_);
          std::lock_guard<std::mutex> g(ack.m);
          ack.pend.clear();
          ack.win = proto::Delivery();
          ack.epoch = e;
        }
        bool hadDup = false;
        for (NToken& tok : toks) {
          const std::uint64_t seq =
              proto::Delivery::linkMsgIdSeq(tok.msgId);
          if (rx_.acceptSeq(srcPe, me_, seq)) {
            // Fresh: deposit only. The ack waits until the worker thread
            // drains the token AND its Recv record is supervisor-stable
            // (noteDrained -> pumpAcks) — acking now would let a kill
            // between ack and log lose the token forever.
            sink_.deposit(me_, numPes_, std::move(tok));
          } else {
            hadDup = true;
          }
        }
        if (hadDup) {
          // The sender is retransmitting: re-ack the stable window
          // immediately (it never covers unlogged tokens).
          proto::Delivery::CumAckView view;
          std::uint8_t ackEpoch = 0;
          {
            std::lock_guard<std::mutex> g(ack.m);
            view = ack.win.cumAckView(srcPe, me_);
            ackEpoch = ack.epoch;
          }
          sendCumAckE(srcPe, view, ackEpoch);
        }
        break;
      }
      case kTypeCumAckE: {
        if (n != kCumAckEWireBytes) {
          badDatagrams_.fetch_add(1);
          break;
        }
        const std::uint16_t acker = get16(buf + 1);
        if (acker >= numPes_ || acker == me_) {
          badDatagrams_.fetch_add(1);
          break;
        }
        if (buf[19] != epoch_) {
          // An ack for a previous incarnation of this process: its seq
          // numbers refer to the dead stream and would wrongly retire the
          // renumbered fresh sends.
          staleAcks_.fetch_add(1);
          break;
        }
        acksRecv_.fetch_add(1);
        const std::uint64_t cum = get64(buf + 3);
        const std::uint64_t bitmap = get64(buf + 11);
        std::vector<std::uint64_t> retired;
        {
          std::lock_guard<std::mutex> g(m_);
          retired = sender_.onCumAck(me_, acker, cum, bitmap);
        }
        if (!retired.empty()) {
          LinkOut& lk = *out_[static_cast<std::size_t>(acker)];
          std::lock_guard<std::mutex> g(lk.m);
          for (const std::uint64_t id : retired)
            lk.unackedWire.erase(proto::Delivery::linkMsgIdSeq(id));
        }
        break;
      }
      default:
        badDatagrams_.fetch_add(1);
        break;
    }
  }

  void timerMain() {
    std::unique_lock<std::mutex> g(m_);
    while (!timerStop_) {
      if (heap_.empty()) {
        timerCv_.wait(g, [&] { return timerStop_ || !heap_.empty(); });
        continue;
      }
      const auto due = heap_.front().due;
      if (timerCv_.wait_until(g, due, [&] {
            return timerStop_ || heap_.front().due < due;
          })) {
        if (timerStop_) break;
        continue;
      }
      while (!heap_.empty() && heap_.front().due <= Clock::now()) {
        std::pop_heap(heap_.begin(), heap_.end(), EvLater{});
        TimerEv ev = heap_.back();
        heap_.pop_back();
        g.unlock();
        if (ev.kind == TimerEv::Kind::Flush)
          flushLink(ev.toPe, FlushWhy::Deadline);
        else
          fireRetx(ev.toPe);
        g.lock();
      }
    }
  }

  TransportSink& sink_;
  const int numPes_;
  const int me_;
  const std::uint8_t epoch_;
  const int fd_;
  WorkerLink* const link_;
  std::vector<LinkStat> links_;
  std::vector<sockaddr_in> addrs_;
  /// Sender window under m_; one receiver endpoint touched only by the rx
  /// thread (and primeRecv before threads start).
  proto::Delivery sender_;
  proto::Delivery rx_;
  std::vector<std::unique_ptr<LinkOut>> out_;
  std::vector<std::unique_ptr<AckState>> acks_;
  /// Highest incarnation seen per source. rx thread only (+ pre-start
  /// primeRecv); the worker-thread view lives in AckState::epoch.
  std::vector<std::uint8_t> knownEpoch_;
  std::atomic<int> dirty_{0};

  std::thread rxThread_;
  std::thread timerThread_;
  std::atomic<bool> rxStop_{false};

  mutable std::mutex m_;  // guards heap_, timerStop_, sender_
  std::condition_variable timerCv_;
  std::vector<TimerEv> heap_;
  bool timerStop_ = false;

  std::atomic<std::int64_t> tokensSent_{0};
  std::atomic<std::int64_t> datagramsSent_{0};
  std::atomic<std::int64_t> bytesSent_{0};
  std::atomic<std::int64_t> datagramsRecv_{0};
  std::atomic<std::int64_t> bytesRecv_{0};
  std::atomic<std::int64_t> acksSent_{0};
  std::atomic<std::int64_t> acksRecv_{0};
  std::atomic<std::int64_t> sendErrors_{0};
  std::atomic<std::int64_t> badDatagrams_{0};
  std::atomic<std::int64_t> staleEpoch_{0};
  std::atomic<std::int64_t> staleAcks_{0};
  std::atomic<std::int64_t> gatedFlushes_{0};
  std::atomic<std::int64_t> batchDgrams_{0};
  std::atomic<std::int64_t> batchTokens_{0};
  std::atomic<std::int64_t> flushFull_{0};
  std::atomic<std::int64_t> flushDeadline_{0};
  std::atomic<std::int64_t> flushDrain_{0};
  std::atomic<std::int64_t> flushRetx_{0};
};

}  // namespace

bool parseTransportKind(const std::string& name, TransportKind& out) {
  if (name == "inbox") {
    out = TransportKind::Inbox;
    return true;
  }
  if (name == "udp") {
    out = TransportKind::Udp;
    return true;
  }
  if (name == "udp-multiproc") {
    out = TransportKind::UdpMultiproc;
    return true;
  }
  return false;
}

const char* transportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::Udp: return "udp";
    case TransportKind::UdpMultiproc: return "udp-multiproc";
    case TransportKind::Inbox: break;
  }
  return "inbox";
}

void wireEncodeToken(const NToken& tok, std::uint16_t srcPe,
                     std::uint8_t out[kTokenWireBytes]) {
  out[0] = kTypeToken;
  // Flag byte: bit 0 = toCont, bit 1 = add, bits 2..4 = AmKind (0 for
  // ordinary tokens, so the non-array wire stays bit-identical), bits 5..7
  // reserved (decoder rejects them nonzero).
  out[1] = static_cast<std::uint8_t>((tok.toCont ? 1 : 0) | (tok.add ? 2 : 0) |
                                     ((tok.amKind & 0x7u) << 2));
  put16(out + 2, srcPe);
  put16(out + 4, tok.spCode);
  put16(out + 6, tok.slot);
  put64(out + 8, tok.ctx);
  put64(out + 16, tok.cont.pack());
  out[24] = static_cast<std::uint8_t>(tok.v.tag);
  put64(out + 25, tok.v.bits);
  put64(out + 33, tok.msgId);
  put64(out + 41, tok.senderCtx);
  put64(out + 49, tok.sendKey);
  put64(out + 57, tok.wakeKey);
}

bool wireDecodeToken(const std::uint8_t* data, std::size_t len, NToken& tok,
                     std::uint16_t* srcPe) {
  if (len != kTokenWireBytes || data[0] != kTypeToken) return false;
  if (data[1] & ~0x1Fu) return false;  // bits 5..7 reserved
  const std::uint8_t amKind = (data[1] >> 2) & 0x7u;
  if (amKind > kMaxWireAmKind) return false;  // AllocMeta is log-only
  if (data[24] > static_cast<std::uint8_t>(Tag::Cont)) return false;
  tok.toCont = (data[1] & 1) != 0;
  tok.add = (data[1] & 2) != 0;
  tok.amKind = amKind;
  if (srcPe) *srcPe = get16(data + 2);
  tok.spCode = get16(data + 4);
  tok.slot = get16(data + 6);
  tok.ctx = get64(data + 8);
  tok.cont = Cont::unpack(get64(data + 16));
  tok.v.tag = static_cast<Tag>(data[24]);
  tok.v.bits = get64(data + 25);
  tok.msgId = get64(data + 33);
  tok.senderCtx = get64(data + 41);
  tok.sendKey = get64(data + 49);
  tok.wakeKey = get64(data + 57);
  return true;
}

std::size_t wireEncodeBatch(const NToken* toks, int count, std::uint16_t srcPe,
                            std::uint8_t* out) {
  PODS_CHECK_MSG(count >= 1 && count <= kBatchMaxTokens,
                 "wireEncodeBatch: count out of range");
  if (count == 1) {
    wireEncodeToken(toks[0], srcPe, out);
    return kTokenWireBytes;
  }
  out[0] = kTypeBatch;
  put16(out + 1, srcPe);
  put16(out + 3, static_cast<std::uint16_t>(count));
  for (int i = 0; i < count; ++i)
    wireEncodeToken(toks[i], srcPe,
                    out + kBatchHeaderBytes +
                        static_cast<std::size_t>(i) * kTokenWireBytes);
  return kBatchHeaderBytes + static_cast<std::size_t>(count) * kTokenWireBytes;
}

bool wireDecodeBatch(const std::uint8_t* data, std::size_t len,
                     std::vector<NToken>& out, std::uint16_t* srcPe) {
  out.clear();
  if (len < 1) return false;
  if (data[0] == kTypeToken) {
    NToken tok;
    std::uint16_t src = 0;
    if (!wireDecodeToken(data, len, tok, &src)) return false;
    if (srcPe) *srcPe = src;
    out.push_back(tok);
    return true;
  }
  if (data[0] != kTypeBatch || len < kBatchHeaderBytes) return false;
  const std::uint16_t src = get16(data + 1);
  const int count = get16(data + 3);
  // A 1-record batch is never emitted (it goes out as the bare legacy
  // token datagram), so count < 2 is malformed, as is any length that is
  // not exactly header + count records (truncation or trailing junk).
  if (count < 2 || count > kBatchMaxTokens) return false;
  if (len != kBatchHeaderBytes +
                 static_cast<std::size_t>(count) * kTokenWireBytes)
    return false;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    NToken tok;
    std::uint16_t recSrc = 0;
    if (!wireDecodeToken(data + kBatchHeaderBytes +
                             static_cast<std::size_t>(i) * kTokenWireBytes,
                         kTokenWireBytes, tok, &recSrc) ||
        recSrc != src) {
      out.clear();  // all-or-nothing: one bad record rejects the datagram
      return false;
    }
    out.push_back(tok);
  }
  if (srcPe) *srcPe = src;
  return true;
}

std::unique_ptr<Transport> makeInboxTransport(TransportSink& sink,
                                              const FaultPlan& plan,
                                              int numPes) {
  return std::make_unique<InboxTransport>(sink, plan, numPes);
}

std::unique_ptr<Transport> makeUdpTransport(TransportSink& sink,
                                            const FaultPlan& plan,
                                            int numPes) {
  return std::make_unique<UdpTransport>(sink, plan, numPes);
}

std::unique_ptr<Transport> makeTransport(TransportKind kind,
                                         TransportSink& sink,
                                         const FaultPlan& plan, int numPes) {
  if (kind == TransportKind::Udp) return makeUdpTransport(sink, plan, numPes);
  return makeInboxTransport(sink, plan, numPes);
}

std::unique_ptr<Transport> makeUdpMultiprocTransport(
    TransportSink& sink, const FaultPlan& plan, int numPes, int localPe,
    std::uint8_t epoch, int sockFd, const std::vector<std::uint16_t>& peerPorts,
    WorkerLink* link) {
  PODS_CHECK_MSG(static_cast<int>(peerPorts.size()) == numPes,
                 "udp-multiproc: port table size mismatch");
  return std::make_unique<UdpMultiprocTransport>(sink, plan, numPes, localPe,
                                                 epoch, sockFd, peerPorts,
                                                 link);
}

}  // namespace pods::native
