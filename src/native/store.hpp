// The native array-store seam: which backend holds I-structure elements.
//
// The paper's Data-Distributed Execution model treats every structure access
// as a message to the owning PE; the simulator models this (`net.arrayMsgs`,
// deferred reads at the Array Manager). The native engine historically took
// a shortcut: cross-PE ARD/AWR went straight at shared memory (the in-process
// NArray heap, or the shm segment in multi-process mode), bypassing the
// Transport seam, fault injection, and the batched-UDP/ack machinery. This
// header names the seam that removes the shortcut:
//
//  - LocalStore (default): the historical shared-heap fast path. In-process
//    transports read/write the mutex-guarded NArray heap directly; the
//    multi-process transport uses the supervisor-created shm segment.
//  - WireStore (`podsc --store=wire`): elements live in per-PE private maps
//    owned by `ArrayLayout`'s page math, and every non-local access becomes
//    a typed *array message* (AmKind) riding the existing token wire — the
//    same NToken records, batch datagrams, per-link sequence windows,
//    cumulative acks, retransmit, fault dice, and receive-log replay as
//    ordinary tokens. No shm, no shared heap: the layering a remote-host
//    worker needs.
//
// Protocol (owner-serviced, I-structure semantics):
//   ReadReq   requester -> owner   split-phase read. If the element is
//                                  present the owner answers immediately;
//                                  if absent the requester's continuation is
//                                  parked at the owner (deferred read) and
//                                  filled by the eventual write.
//   Write     writer    -> owner   fire-and-forget single-assignment write;
//                                  the owner detects violations and drains
//                                  parked readers into value replies.
//   DimReq    any PE    -> allocator  shape query (allocator = id % numPEs);
//   DimReply  allocator -> requester  rank/dims — fills the requester's meta
//                                  cache and requeues shape-blocked frames.
//   value replies ride the existing array wake-up token (toCont + wakeKey),
//   so requester-side dedup (`myParks`) and kill recovery are unchanged.
//
// AllocMeta never travels the wire: it is the receive-log record a
// multi-process allocator writes so a respawn can rebuild its shape table
// (and keep answering DimReq) even after the allocating frame retired.
#pragma once

#include <cstdint>
#include <string>

namespace pods::native {

/// Which array-store backend the native machine uses.
enum class StoreKind : std::uint8_t {
  Local,  // shared heap (in-process) / shm segment (multi-process); default
  Wire,   // owner-serviced array messages on the token transport; no shm
};

/// Parses a `podsc --store=` value ("local", "wire").
bool parseStoreKind(const std::string& name, StoreKind& out);
const char* storeKindName(StoreKind kind);

/// Typed array-message kinds carried in the token record's flag byte
/// (bits 2..4; 0 marks an ordinary token, keeping the wire bit-identical
/// for non-array traffic). Field reuse on NToken:
///   ctx       = array id                  (all kinds)
///   senderCtx = element offset            (ReadReq / Write); dim0 (DimReply)
///   slot      = requester PE              (ReadReq / DimReq); rank (DimReply)
///   cont      = requester continuation    (ReadReq)
///   v         = element value             (Write); dim1 as Int (DimReply)
enum class AmKind : std::uint8_t {
  None = 0,      // not an array message
  ReadReq = 1,   // split-phase read request (park at owner when absent)
  Write = 2,     // single-assignment element write
  DimReq = 3,    // shape query to the allocator
  DimReply = 4,  // shape answer (rank, dim0, dim1)
  AllocMeta = 5, // log-only: allocator's durable (id -> shape) record
};

/// Highest AmKind value that may appear on the wire (AllocMeta is log-only).
inline constexpr std::uint8_t kMaxWireAmKind = 4;

}  // namespace pods::native
