// Source locations and user-facing diagnostics for the IdLite frontend.
#pragma once

#include <string>
#include <vector>

namespace pods {

/// A position in an IdLite source buffer (1-based line/column).
struct SrcLoc {
  int line = 0;
  int col = 0;
  bool valid() const { return line > 0; }
};

enum class DiagKind { Error, Warning, Note };

/// One user-facing message (lexer/parser/sema error or warning).
struct Diag {
  DiagKind kind = DiagKind::Error;
  SrcLoc loc;
  std::string message;

  std::string str() const;
};

/// Accumulates diagnostics during compilation. The frontend never throws
/// across the public API; callers check hasErrors() instead.
class DiagSink {
 public:
  void error(SrcLoc loc, std::string msg);
  void warning(SrcLoc loc, std::string msg);
  void note(SrcLoc loc, std::string msg);

  bool hasErrors() const { return errorCount_ > 0; }
  int errorCount() const { return errorCount_; }
  const std::vector<Diag>& all() const { return diags_; }

  /// All diagnostics joined with newlines, for error reporting in tools.
  std::string str() const;

 private:
  std::vector<Diag> diags_;
  int errorCount_ = 0;
};

}  // namespace pods
