#include "support/table.hpp"

#include <cstdio>

#include "support/check.hpp"

namespace pods {

std::string fmtF(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(std::string value) {
  PODS_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  rows_.back().push_back(std::move(value));
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  return cell(fmtF(value, precision));
}

TextTable& TextTable::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

std::string TextTable::str() const {
  std::vector<size_t> width(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& r : rows_) {
    for (size_t i = 0; i < r.size() && i < width.size(); ++i) {
      width[i] = std::max(width[i], r[i].size());
    }
  }
  auto emitRow = [&](const std::vector<std::string>& cells, std::string& out) {
    for (size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      out += "  ";
      // Right-align everything but the first column (labels on the left).
      if (i == 0) {
        out += c;
        out.append(width[i] - c.size(), ' ');
      } else {
        out.append(width[i] - c.size(), ' ');
        out += c;
      }
    }
    out += '\n';
  };
  std::string out;
  emitRow(header_, out);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  out.append(total, '-');
  out += '\n';
  for (const auto& r : rows_) emitRow(r, out);
  return out;
}

void TextTable::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace pods
