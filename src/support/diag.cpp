#include "support/diag.hpp"

namespace pods {

std::string Diag::str() const {
  std::string out;
  switch (kind) {
    case DiagKind::Error: out = "error"; break;
    case DiagKind::Warning: out = "warning"; break;
    case DiagKind::Note: out = "note"; break;
  }
  if (loc.valid()) {
    out += " at " + std::to_string(loc.line) + ":" + std::to_string(loc.col);
  }
  out += ": " + message;
  return out;
}

void DiagSink::error(SrcLoc loc, std::string msg) {
  diags_.push_back({DiagKind::Error, loc, std::move(msg)});
  ++errorCount_;
}

void DiagSink::warning(SrcLoc loc, std::string msg) {
  diags_.push_back({DiagKind::Warning, loc, std::move(msg)});
}

void DiagSink::note(SrcLoc loc, std::string msg) {
  diags_.push_back({DiagKind::Note, loc, std::move(msg)});
}

std::string DiagSink::str() const {
  std::string out;
  for (const Diag& d : diags_) {
    out += d.str();
    out += '\n';
  }
  return out;
}

}  // namespace pods
