// Internal invariant checking.
//
// PODS_CHECK is used for programming-error invariants inside the library
// (per C++ Core Guidelines I.6/E.12 style: fail fast and loudly on broken
// preconditions). These are *not* used for user-input errors; the frontend
// reports those through support/diag.hpp instead.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pods {

[[noreturn]] inline void checkFailed(const char* cond, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "PODS_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace pods

#define PODS_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) ::pods::checkFailed(#cond, __FILE__, __LINE__, "");  \
  } while (0)

#define PODS_CHECK_MSG(cond, msg)                                      \
  do {                                                                 \
    if (!(cond)) ::pods::checkFailed(#cond, __FILE__, __LINE__, msg);  \
  } while (0)

#define PODS_UNREACHABLE(msg) ::pods::checkFailed("unreachable", __FILE__, __LINE__, msg)
