// Simulated-time representation.
//
// The PODS simulator counts time in integer nanoseconds so that every timing
// constant of the paper (which are microseconds with up to three decimals,
// e.g. 1.312 us for a context switch) is represented exactly and the
// discrete-event simulation is fully deterministic. Helpers convert to the
// microsecond / second units used when reporting results in the paper's terms.
#pragma once

#include <cstdint>
#include <compare>

namespace pods {

/// A point in (or span of) simulated time, in nanoseconds.
struct SimTime {
  std::int64_t ns = 0;

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return {ns + o.ns}; }
  constexpr SimTime operator-(SimTime o) const { return {ns - o.ns}; }
  constexpr SimTime& operator+=(SimTime o) { ns += o.ns; return *this; }
  constexpr SimTime operator*(std::int64_t k) const { return {ns * k}; }

  constexpr double us() const { return static_cast<double>(ns) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns) / 1e9; }
};

/// Construct a SimTime from whole nanoseconds.
constexpr SimTime nsec(std::int64_t v) { return {v}; }

/// Construct a SimTime from (possibly fractional) microseconds.
/// Rounds to the nearest nanosecond; all paper constants are exact.
constexpr SimTime usec(double v) {
  return {static_cast<std::int64_t>(v * 1e3 + (v >= 0 ? 0.5 : -0.5))};
}

constexpr SimTime kTimeZero{0};

}  // namespace pods
