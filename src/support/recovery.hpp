// Fail-stop recovery support shared by the simulated and native engines.
//
// PODS needs no checkpoints to survive a PE fail-stop: single assignment
// (I-structure arrays, write-once frame slots) makes re-execution of a lost
// frame produce bit-identical tokens, so recovery is "message logging +
// deterministic replay" in its cheapest form. Each PE keeps an ordered
// *receive log* of every token delivered to it (the allocate/spawn log of
// the ROADMAP: spawn-by-token IS frame allocation here) plus a mint log of
// the identities it handed out (NEWCTX context ids, ALLOC array ids). On
// restart the PE
//   1. rebuilds its frame table by replaying the receive log in order —
//      context-addressed tokens recreate frames at their original indices
//      (and original generations in the native engine), END records turn
//      frames back into retired stubs so straggler continuations still
//      resolve to "dead" instead of aliasing;
//   2. re-executes every frame that was live at the kill from pc 0; the
//      mint log makes NEWCTX/ALLOC idempotent (the n-th mint by a given
//      context returns its original identity), and array writes /
//      RESULT stores of an already-present identical value are no-ops;
//   3. holds back logged *continuation-addressed* deliveries (call results,
//      loop yields, join-counter increments) and re-delivers them only when
//      the re-executing frame re-sends to the original sender's context —
//      this keeps multi-round slots (CLEARed once per call) from being
//      filled with a later round's value before the earlier round re-runs.
//
// Duplicate suppression under replay cannot use message ids (a re-executed
// send is a *new* message carrying an old payload), so in kill mode every
// token also carries a logical send key: context-addressed tokens are
// deduplicated by (target ctx, slot) — each argument of each context is
// sent exactly once per instance — and continuation-addressed tokens by
// (sender ctx, sender PE, per-frame send sequence), which deterministic
// re-execution reproduces exactly.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/value.hpp"

namespace pods {

/// One record of the per-PE receive log.
struct RecEntry {
  enum class Kind : std::uint8_t {
    Boot,      // the bootstrap main frame (created without a spawn token)
    CtxToken,  // context-addressed delivery (spawn/call argument)
    ConToken,  // continuation-addressed delivery (result / yield / join add)
    End,       // frame retirement (its ctx entered the retired ledger)
    Recv,      // multi-process: wire-accepted inbound token (msgId only) —
               // replayed to rebuild the UDP receive/ack windows so a
               // survivor's old-numbered retransmits still dedup and ack
    Am,        // wire array store (multi-process): a serviced array message
               // (AmKind in spCode; ctx = array id, senderCtx = offset,
               // v = value, sendKey = packed requester continuation, slot =
               // requester PE / rank) or the allocator's AllocMeta shape
               // record. Replayed to rebuild the PE's owned-element map,
               // parked deferred reads, and shape table — re-applied writes
               // are idempotent identical overwrites, re-answered reads and
               // shape queries are deduplicated at the requester.
  };
  Kind kind = Kind::CtxToken;
  std::uint16_t spCode = 0;    // Boot / frame-creating CtxToken
  std::uint64_t ctx = 0;       // target ctx (Boot/CtxToken/End)
  std::uint16_t slot = 0;      // target slot (CtxToken) — ConToken uses cont
  Value v{};
  bool add = false;            // ConToken: accumulate instead of set
  std::uint32_t frame = 0;     // ConToken target / CtxToken created index
  std::uint16_t gen = 0;       // native: generation at creation / targeting
  std::uint64_t senderCtx = 0; // ConToken: sending frame's context
  std::uint64_t sendKey = 0;   // ConToken: (sender PE << 32 | sender seq)
  std::uint64_t msgId = 0;     // network message id (0 for local sends)
};

/// Per-PE stable recovery state. Conceptually this lives off-PE (stable
/// storage / the surviving fabric); in-process it is owned by the machine
/// Impl so a kill that wipes the PE's volatile state leaves it intact.
struct RecoveryLog {
  std::vector<RecEntry> entries;
  /// Mint log: identities handed out by frames of this PE, keyed by
  /// (minting context, per-frame mint sequence). The sequence number is
  /// stamped in program order, but records can *land* out of order: a
  /// NEWCTX mint is recorded inline while an ALLOC mint is recorded when
  /// the Array Manager gets to the request, so the map is keyed by the
  /// exact sequence rather than append order.
  std::unordered_map<std::uint64_t, std::unordered_map<std::uint32_t, Value>>
      mints;
  /// High-water of the PE's context counter, persisted so a restarted PE
  /// never re-mints a context id already given out before the kill.
  std::uint64_t ctxCounter = 0;

  void recordMint(std::uint64_t ctx, std::uint32_t seq, const Value& v) {
    mints[ctx].emplace(seq, v);  // replayed mints keep the original identity
  }
  const Value* findMint(std::uint64_t ctx, std::uint32_t seq) const {
    auto it = mints.find(ctx);
    if (it == mints.end()) return nullptr;
    auto jt = it->second.find(seq);
    return jt == it->second.end() ? nullptr : &jt->second;
  }
};

/// Receiver-side logical dedup for kill mode (exactly-once delivery that is
/// stable under sender re-execution). Every PE keeps one — survivors need it
/// to absorb a restarted neighbor's re-sent tokens.
///
/// Both ledgers are keyed by the *consuming* context so retire() can shed an
/// instance's keys the moment it ENDs. That is sound because consumers check
/// frame liveness before consulting dedup: a late duplicate addressed to a
/// retired instance is dropped (dead frame) or triaged as a straggler before
/// the pruned entry would ever be missed. Without pruning the ledgers grow
/// with the total instance count of the run; with it they are bounded by the
/// number of concurrently-live instances.
struct ReplayDedup {
  // (target ctx) -> slots already filled by a context-addressed token.
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint32_t>> ctxSlots;
  // (consumer ctx) -> (sender ctx) ->
  //     (sender PE << 32 | per-frame send seq) already applied.
  std::unordered_map<
      std::uint64_t,
      std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>>
      contKeys;

  /// True the first time this context-addressed (ctx, slot) is seen.
  bool firstCtx(std::uint64_t ctx, std::uint16_t slot) {
    return ctxSlots[ctx].insert(slot).second;
  }
  /// True the first time consumer `consumerCtx` sees this (sender ctx,
  /// send key) pair.
  bool firstCont(std::uint64_t consumerCtx, std::uint64_t senderCtx,
                 std::uint64_t sendKey) {
    return contKeys[consumerCtx][senderCtx].insert(sendKey).second;
  }
  /// The instance ENDed: release everything keyed by it.
  void retire(std::uint64_t ctx) {
    ctxSlots.erase(ctx);
    contKeys.erase(ctx);
  }
  /// Ledger residency (for the bounded-recovery-state counters/tests).
  std::int64_t liveKeys() const {
    std::int64_t n = 0;
    for (const auto& [ctx, slots] : ctxSlots)
      n += static_cast<std::int64_t>(slots.size());
    for (const auto& [ctx, senders] : contKeys)
      for (const auto& [sender, keys] : senders)
        n += static_cast<std::int64_t>(keys.size());
    return n;
  }
  void clear() {
    ctxSlots.clear();
    contKeys.clear();
  }
};

inline std::uint64_t packSendKey(int pe, std::uint32_t seq) {
  return (std::uint64_t(std::uint32_t(pe)) << 32) | seq;
}

}  // namespace pods
