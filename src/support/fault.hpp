// Deterministic fault injection for the simulated and native PODS machines.
//
// The paper's "ultimate goal" is running PODS on a real iPSC/2-class
// machine, where messages get lost, duplicated, and delayed. PODS's own
// semantics make an unreliable transport survivable by construction: tokens
// land in single-assignment frame slots and array writes are I-structure
// writes, so *redelivery* of a message is harmless as long as non-idempotent
// tokens (ADDC join counters, spawn-by-token) are deduplicated by message
// id. Both engines therefore pair injection with a reliable-delivery layer:
// acknowledgments + retransmit with exponential backoff in the simulator
// (all in simulated time, so a faulty run stays bit-deterministic for a
// fixed seed), and a retransmit daemon with wall-clock backoff in the
// native runtime.
//
// A FaultPlan is a *pure function* of (seed, transmission id): deciding the
// fate of transmission #n never consults mutable state, so the simulator —
// which numbers transmissions in deterministic event order — replays the
// exact same fault schedule on every run with the same seed.
#pragma once

#include <cstdint>
#include <string>

#include "support/rng.hpp"

namespace pods {
namespace proto {

/// Retransmit tuning shared by every reliable-delivery driver: the sim
/// Routing Unit (simulated time), the native inbox transport, and the UDP
/// transport (both wall-clock). One policy, one set of defaults — the three
/// engines can no longer silently drift apart.
struct RetryPolicy {
  /// Initial retransmit timeout in microseconds (simulated or wall-clock,
  /// depending on the driver). Doubles on every retry up to the cap below.
  double rtoUs = 500.0;
  /// Give up — a structured runtime error, never silent loss — once a
  /// message has been transmitted this many times.
  int maxAttempts = 100;
  /// Backoff cap: the effective timeout is rtoUs << min(attempt-1, this).
  int maxBackoffDoublings = 6;
  /// Floor applied when fault injection is *off* but the transport is still
  /// inherently lossy (UDP on loopback): 500 us causes spurious retransmits
  /// against real kernel scheduling jitter, so fault-free wall-clock drivers
  /// use at least this RTO. Loopback fault-free only ever loses a datagram
  /// to kernel-buffer exhaustion, so a generous floor costs nothing in the
  /// common case — while a tight one turns every scheduling hiccup (and
  /// every lazily-acked batch stream) into a retransmit storm.
  double faultFreeFloorUs = 25000.0;

  /// Base timeout for attempt 1 — the configured RTO, or the lossless-floor
  /// maximum when injection is disabled.
  double baseRtoUs(bool faultsEnabled) const {
    return faultsEnabled ? rtoUs : (rtoUs > faultFreeFloorUs ? rtoUs : faultFreeFloorUs);
  }
  /// Timeout to arm after transmission #attempt (1-based): exponential
  /// backoff with a doubling cap.
  double backoffUs(int attempt, double base) const {
    const int shift = attempt - 1 < maxBackoffDoublings ? attempt - 1 : maxBackoffDoublings;
    return base * static_cast<double>(1ULL << shift);
  }
  /// True when a message that has already been transmitted `attempt` times
  /// must not be retransmitted again.
  bool giveUpAt(int attempt) const { return attempt >= maxAttempts; }
};

}  // namespace proto

/// What the (simulated) network does with one transmission of one message.
enum class FaultAction : std::uint8_t {
  Deliver,    // arrives normally
  Drop,       // vanishes; the sender's retransmit timer recovers it
  Duplicate,  // arrives twice; the receiver's dedup set suppresses the copy
  Delay,      // arrives late (extra latency beyond the normal network hop)
};

/// User-facing fault-injection knobs, carried by MachineConfig::faults and
/// NativeConfig::faults. All probabilities are per *transmission* (a
/// retransmission rolls fresh dice), in [0, 0.5]. Defaults are all-zero:
/// injection disabled and both engines on their exact pre-fault fast paths.
struct FaultConfig {
  double dropProb = 0.0;   // message loss: tokens, array-page messages, and
                           // (native --store=wire) every owner-serviced
                           // array message — reads, writes, shape queries
                           // and their replies ride the same dice
  double dupProb = 0.0;    // message duplication
  double delayProb = 0.0;  // message delay (extra latency, no loss)
  double stallProb = 0.0;  // transient PE stall on message receipt
  std::uint64_t seed = 1;  // fault schedule seed (podsc --fault-seed)

  // Retransmit tuning shared by all three reliable-delivery drivers.
  proto::RetryPolicy retry{};

  // Injection latencies, simulator (simulated microseconds).
  double simDelayUs = 120.0;  // injected extra latency of a delayed message
  double simStallUs = 200.0;  // injected transient EU stall

  // Injection latencies, native runtime (wall-clock microseconds).
  double nativeDelayUs = 100.0;  // injected delivery delay
  double nativeStallUs = 100.0;  // injected worker stall

  // Fail-stop injection: kill PE `killPe` once at `killTimeUs` (simulated
  // microseconds in the simulator, wall-clock microseconds after run start
  // in the native runtime) and restart it `killRestartUs` later from its
  // allocate/spawn log. killPe < 0 disables the kill.
  int killPe = -1;
  double killTimeUs = 0.0;
  double killRestartUs = 400.0;

  bool killEnabled() const { return killPe >= 0; }

  // A kill implies the reliable-delivery layer: messages addressed to the
  // dead PE must be buffered/retransmitted until it restarts, so both
  // engines route every message through the ack/retransmit path whenever
  // any fault — lossy or fail-stop — is configured.
  bool enabled() const {
    return dropProb > 0.0 || dupProb > 0.0 || delayProb > 0.0 ||
           stallProb > 0.0 || killEnabled();
  }

  /// Parses a `podsc --faults=` spec: comma-separated entries that are
  /// either `key:probability` pairs with keys drop, dup, delay, stall —
  /// e.g. "drop:0.01,dup:0.005,delay:0.02" (probabilities in [0, 0.5]) —
  /// or a fail-stop `kill:PE@TIMEUS[+RESTARTUS]` entry, e.g. "kill:2@350"
  /// or "kill:2@350+800". Returns false (and fills `err`) on a malformed
  /// spec; `out` keeps its other fields (seed, timeouts) untouched.
  static bool parse(const std::string& spec, FaultConfig& out,
                    std::string* err = nullptr);
};

/// Seeded, stateless fault schedule. Every decision mixes the seed, a
/// per-purpose salt, and the transmission id through SplitMix64, so callers
/// that number transmissions deterministically get a deterministic schedule
/// and retransmissions (fresh ids) get independent dice.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& cfg) : cfg_(cfg) {}

  bool enabled() const { return cfg_.enabled(); }
  const FaultConfig& config() const { return cfg_; }

  /// Fate of transmission #id (message sends and acknowledgments alike).
  FaultAction action(std::uint64_t id) const {
    if (!enabled()) return FaultAction::Deliver;
    const double u = draw(0x6d65737361676573ULL /* "messages" */, id);
    if (u < cfg_.dropProb) return FaultAction::Drop;
    if (u < cfg_.dropProb + cfg_.dupProb) return FaultAction::Duplicate;
    if (u < cfg_.dropProb + cfg_.dupProb + cfg_.delayProb)
      return FaultAction::Delay;
    return FaultAction::Deliver;
  }

  /// True when receipt #id additionally stalls the receiving PE.
  bool stallHit(std::uint64_t id) const {
    return cfg_.stallProb > 0.0 &&
           draw(0x7374616c6c730aULL /* "stalls" */, id) < cfg_.stallProb;
  }

 private:
  /// One uniform draw in [0, 1), pure in (seed, salt, id).
  double draw(std::uint64_t salt, std::uint64_t id) const {
    SplitMix64 rng(cfg_.seed ^ (salt * 0x9E3779B97F4A7C15ULL) ^
                   ((id + 1) * 0xD1B54A32D192ED03ULL));
    return rng.unit();
  }

  FaultConfig cfg_{};
};

}  // namespace pods
