// Deterministic pseudo-random number generation for workload generators and
// property tests. SplitMix64: tiny, fast, reproducible across platforms.
#pragma once

#include <cstdint>

namespace pods {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double range(double lo, double hi) { return lo + (hi - lo) * unit(); }

 private:
  std::uint64_t state_;
};

}  // namespace pods
