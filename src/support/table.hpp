// Plain-text table printer used by the benchmark harnesses to print the
// paper's tables and figure series in aligned columns.
#pragma once

#include <string>
#include <vector>

namespace pods {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row.
  TextTable& row();
  /// Appends one cell to the current row.
  TextTable& cell(std::string value);
  TextTable& cell(double value, int precision = 2);
  TextTable& cell(std::int64_t value);
  TextTable& cell(int value) { return cell(static_cast<std::int64_t>(value)); }

  /// Renders the table with a header rule, columns padded to fit.
  std::string str() const;
  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string fmtF(double v, int precision = 2);

}  // namespace pods
