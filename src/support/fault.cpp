#include "support/fault.hpp"

#include <cstdlib>

namespace pods {

namespace {

bool parseNum(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool parseProb(const std::string& text, double& out) {
  return parseNum(text, out) && out >= 0.0 && out <= 0.5;
}

}  // namespace

bool FaultConfig::parse(const std::string& spec, FaultConfig& out,
                        std::string* err) {
  auto fail = [&](const std::string& why) {
    if (err) *err = "bad fault spec '" + spec + "': " + why;
    return false;
  };
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) return fail("empty entry");
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) return fail("expected key:prob in '" + item + "'");
    const std::string key = item.substr(0, colon);
    const std::string val = item.substr(colon + 1);
    if (key == "kill") {
      // kill:PE@TIMEUS[+RESTARTUS] — fail-stop PE at a point in time.
      const std::size_t at = val.find('@');
      if (at == std::string::npos)
        return fail("expected kill:PE@TIMEUS in '" + item + "'");
      double pe = 0.0;
      if (!parseNum(val.substr(0, at), pe) || pe < 0.0 || pe != double(int(pe)))
        return fail("kill PE '" + val.substr(0, at) +
                    "' is not a non-negative integer");
      std::string when = val.substr(at + 1);
      double restart = out.killRestartUs;
      const std::size_t plus = when.find('+');
      if (plus != std::string::npos) {
        if (!parseNum(when.substr(plus + 1), restart) || restart <= 0.0)
          return fail("kill restart delay '" + when.substr(plus + 1) +
                      "' is not a positive number");
        when = when.substr(0, plus);
      }
      double t = 0.0;
      if (!parseNum(when, t) || t < 0.0)
        return fail("kill time '" + when + "' is not a non-negative number");
      out.killPe = int(pe);
      out.killTimeUs = t;
      out.killRestartUs = restart;
      continue;
    }
    double p = 0.0;
    if (!parseProb(val, p))
      return fail("probability '" + val + "' not in [0, 0.5]");
    if (key == "drop") {
      out.dropProb = p;
    } else if (key == "dup") {
      out.dupProb = p;
    } else if (key == "delay") {
      out.delayProb = p;
    } else if (key == "stall") {
      out.stallProb = p;
    } else {
      return fail("unknown key '" + key + "' (want drop|dup|delay|stall|kill)");
    }
  }
  return true;
}

}  // namespace pods
