#include "support/fault.hpp"

#include <cstdlib>

namespace pods {

namespace {

bool parseProb(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  return out >= 0.0 && out <= 0.5;
}

}  // namespace

bool FaultConfig::parse(const std::string& spec, FaultConfig& out,
                        std::string* err) {
  auto fail = [&](const std::string& why) {
    if (err) *err = "bad fault spec '" + spec + "': " + why;
    return false;
  };
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) return fail("empty entry");
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) return fail("expected key:prob in '" + item + "'");
    const std::string key = item.substr(0, colon);
    const std::string val = item.substr(colon + 1);
    double p = 0.0;
    if (!parseProb(val, p))
      return fail("probability '" + val + "' not in [0, 0.5]");
    if (key == "drop") {
      out.dropProb = p;
    } else if (key == "dup") {
      out.dupProb = p;
    } else if (key == "delay") {
      out.delayProb = p;
    } else if (key == "stall") {
      out.stallProb = p;
    } else {
      return fail("unknown key '" + key + "' (want drop|dup|delay|stall)");
    }
  }
  return true;
}

}  // namespace pods
