#include "support/stats.hpp"

#include <cstdio>
#include <fstream>

namespace pods {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  sum_ += x;
  ++n_;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", ch);
      out += buf;
      continue;
    }
    out.push_back(ch);
  }
  return out;
}

bool writeStatsJson(const std::string& path, const std::string& engine,
                    int pes, double timeMs, const Counters& counters,
                    double wallSeconds, std::uint64_t events) {
  std::ofstream f(path);
  if (!f) return false;
  f << "{\n  \"engine\": \"" << jsonEscape(engine) << "\",\n"
    << "  \"pes\": " << pes << ",\n"
    << "  \"time_ms\": " << timeMs << ",\n";
  if (wallSeconds > 0.0) {
    f << "  \"derived\": {\n"
      << "    \"wall_ms\": " << wallSeconds * 1e3;
    if (events > 0) {
      f << ",\n    \"sim.events\": " << events << ",\n"
        << "    \"sim.events.persec\": "
        << static_cast<double>(events) / wallSeconds;
    }
    f << "\n  },\n";
  }
  f << "  \"counters\": {";
  bool first = true;
  for (const auto& [k, v] : counters.all()) {
    f << (first ? "\n" : ",\n") << "    \"" << jsonEscape(k) << "\": " << v;
    first = false;
  }
  f << "\n  }\n}\n";
  return f.good();
}

}  // namespace pods
