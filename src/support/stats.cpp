#include "support/stats.hpp"

namespace pods {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  sum_ += x;
  ++n_;
}

}  // namespace pods
