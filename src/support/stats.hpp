// Statistics utilities: busy-time accounting for functional units and
// named event counters, used to reproduce the paper's utilization figures
// (Figure 8, Figure 9).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "support/simtime.hpp"

namespace pods {

/// Accumulates the busy time of a serial resource (a PE functional unit).
/// Utilization is busy / elapsed, exactly as the paper defines "the fraction
/// of the time a given facility is busy".
class BusyMeter {
 public:
  void addBusy(SimTime span) { busy_ += span; }
  SimTime busy() const { return busy_; }

  double utilization(SimTime elapsed) const {
    if (elapsed.ns <= 0) return 0.0;
    return static_cast<double>(busy_.ns) / static_cast<double>(elapsed.ns);
  }

 private:
  SimTime busy_{};
};

/// JSON string escaping for the stats writer (quotes, backslashes, control
/// characters).
std::string jsonEscape(const std::string& s);

/// --stats-json: the full counter registry of a run as one JSON object,
/// machine-readable for bench_gate.py, check_stats_schema.py and friends.
/// Keys are sorted because Counters::all() returns a sorted view, so files
/// diff cleanly. Host-side quantities (wall time, event rate) go into a
/// "derived" object, not "counters": the counter registry is the
/// deterministic contract, wall time is not.
class Counters;
bool writeStatsJson(const std::string& path, const std::string& engine,
                    int pes, double timeMs, const Counters& counters,
                    double wallSeconds = 0.0, std::uint64_t events = 0);

/// A set of named monotonic counters (tokens routed, pages shipped, ...).
class Counters {
 public:
  void add(const std::string& name, std::int64_t delta = 1) { map_[name] += delta; }
  std::int64_t get(const std::string& name) const {
    auto it = map_.find(name);
    return it == map_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::int64_t>& all() const { return map_; }
  void merge(const Counters& other) {
    for (const auto& [k, v] : other.map_) map_[k] += v;
  }
  /// merge() with every incoming name prefixed — used to roll per-resource
  /// counter sets (e.g. one per native worker) into one namespaced total.
  void mergePrefixed(const Counters& other, const std::string& prefix) {
    for (const auto& [k, v] : other.map_) map_[prefix + k] += v;
  }

 private:
  std::map<std::string, std::int64_t> map_;
};

/// A level gauge with a high-water mark: current value plus the peak it ever
/// reached. Used for per-worker live-frame accounting in the native runtime
/// (frames live/peak), where "peak vs retired" is the leak check.
class PeakGauge {
 public:
  void inc(std::int64_t delta = 1) {
    cur_ += delta;
    if (cur_ > peak_) peak_ = cur_;
  }
  void dec(std::int64_t delta = 1) { cur_ -= delta; }
  std::int64_t current() const { return cur_; }
  std::int64_t peak() const { return peak_; }

 private:
  std::int64_t cur_ = 0;
  std::int64_t peak_ = 0;
};

/// Simple online mean/min/max accumulator.
class Summary {
 public:
  void add(double x);
  double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  double min() const { return min_; }
  double max() const { return max_; }
  std::int64_t count() const { return n_; }

 private:
  std::int64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pods
