// PODS — public API.
//
// The one-stop facade over the whole pipeline:
//
//   IdLite source --compile()--> Compiled {AST, dataflow graph, plan, SPs}
//       --runPods()-------------> simulated PODS machine (N PEs)
//       --runStaticBaseline()---> Pingali/Rogers-style static execution
//       --runSequentialBaseline-> conventional sequential cost model
//
// A program compiled once with distribution enabled runs on any PE count;
// Range-Filter bounds are computed at run time from array headers.
//
// Quickstart:
//
//   auto cr = pods::compile(source);
//   if (!cr.ok) { std::cerr << cr.diagnostics; return 1; }
//   pods::sim::MachineConfig mc;
//   mc.numPEs = 8;
//   pods::PodsRun run = pods::runPods(*cr.compiled, mc);
//   std::cout << "time " << run.stats.total.ms() << " ms\n";
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/evaluator.hpp"
#include "frontend/ast.hpp"
#include "ir/graph.hpp"
#include "native/native_machine.hpp"
#include "partition/plan.hpp"
#include "runtime/isa.hpp"
#include "sim/machine.hpp"

namespace pods {

struct CompileOptions {
  /// Run the Partitioner (distributing allocate, LD, Range Filters). With
  /// false the program is compiled all-local (useful for testing and as the
  /// 1-PE configuration of the efficiency comparison).
  bool distribute = true;
  /// Ablation: replace ownership-based Range Filters with plain block
  /// partitioning of iteration ranges (see partition::PlanOptions).
  bool forceBlockRange = false;
};

/// Everything the pipeline produced. Movable; the plan's loop keys point at
/// heap-allocated loop blocks, which remain stable under moves.
struct Compiled {
  fe::Module module;        // analyzed AST (after inline expansion)
  ir::Program graph;        // hierarchical dataflow graph
  partition::Plan plan;     // Partitioner decisions
  SpProgram program;        // translated Subcompact Processes
};

struct CompileResult {
  bool ok = false;
  std::string diagnostics;  // human-readable errors/warnings
  std::unique_ptr<Compiled> compiled;
};

CompileResult compile(std::string_view source, CompileOptions options = {});

/// Program outputs normalized for comparison across execution models:
/// scalar results verbatim, array results expanded to their contents.
struct ProgramOutputs {
  struct OutArray {
    ArrayShape shape{};
    std::vector<Value> elems;
  };
  std::vector<Value> results;
  std::vector<std::optional<OutArray>> arrays;  // parallel to results
};

/// Compares two runs' outputs exactly (Church-Rosser determinacy check).
/// Returns true when identical; otherwise fills `why`.
bool sameOutputs(const ProgramOutputs& a, const ProgramOutputs& b,
                 std::string* why = nullptr);

struct PodsRun {
  sim::RunStats stats;
  ProgramOutputs out;
};

PodsRun runPods(const Compiled& c, const sim::MachineConfig& config);

struct BaselineRun {
  baseline::BaselineResult stats;
  ProgramOutputs out;
};

BaselineRun runStaticBaseline(const Compiled& c, int numPEs,
                              const sim::Timing& timing = {});
BaselineRun runSequentialBaseline(const Compiled& c,
                                  const sim::Timing& timing = {});

/// Execution on the native threaded runtime (real host threads standing in
/// for PEs; wall-clock time instead of simulated time). Results are
/// bit-identical to every other engine — single assignment makes thread
/// interleaving invisible.
struct NativeRun {
  native::NativeResult stats;
  ProgramOutputs out;
};

NativeRun runNative(const Compiled& c, const native::NativeConfig& config);

}  // namespace pods
