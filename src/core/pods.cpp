#include "core/pods.hpp"

#include "frontend/inliner.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "ir/graphgen.hpp"
#include "ir/verify.hpp"
#include "translate/translator.hpp"

namespace pods {

CompileResult compile(std::string_view source, CompileOptions options) {
  CompileResult out;
  DiagSink diags;
  auto compiled = std::make_unique<Compiled>();

  compiled->module = fe::parse(source, diags);
  if (!diags.hasErrors()) fe::expandInlines(compiled->module, diags);
  if (!diags.hasErrors()) fe::analyze(compiled->module, diags);
  if (diags.hasErrors()) {
    out.diagnostics = diags.str();
    return out;
  }
  compiled->graph = ir::buildGraph(compiled->module, diags);
  if (diags.hasErrors()) {
    out.diagnostics = diags.str();
    return out;
  }
  std::string verr;
  if (!ir::verify(compiled->graph, verr)) {
    out.diagnostics = diags.str() + verr + "\n";
    return out;
  }
  partition::PlanOptions popts;
  popts.distribute = options.distribute;
  popts.forceBlockRange = options.forceBlockRange;
  compiled->plan = partition::makePlan(compiled->graph, popts);
  compiled->program = translate::translate(compiled->graph, compiled->plan);

  out.ok = true;
  out.diagnostics = diags.str();  // warnings, if any
  out.compiled = std::move(compiled);
  return out;
}

namespace {

/// Expands results into comparable outputs using an element accessor.
template <typename ArrayLookup>
ProgramOutputs makeOutputs(const std::vector<Value>& results,
                           ArrayLookup&& lookup) {
  ProgramOutputs out;
  out.results = results;
  out.arrays.resize(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].isArray()) continue;
    out.arrays[i] = lookup(results[i].asArray());
  }
  return out;
}

}  // namespace

bool sameOutputs(const ProgramOutputs& a, const ProgramOutputs& b,
                 std::string* why) {
  auto fail = [&](std::string msg) {
    if (why) *why = std::move(msg);
    return false;
  };
  if (a.results.size() != b.results.size())
    return fail("different result counts");
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const bool aArr = a.results[i].isArray();
    const bool bArr = b.results[i].isArray();
    if (aArr != bArr) return fail("result " + std::to_string(i) + " kind");
    if (!aArr) {
      if (!a.results[i].identical(b.results[i])) {
        return fail("result " + std::to_string(i) + ": " + a.results[i].str() +
                    " vs " + b.results[i].str());
      }
      continue;
    }
    const auto& av = a.arrays[i];
    const auto& bv = b.arrays[i];
    if (!av || !bv) return fail("result array " + std::to_string(i) + " missing");
    if (av->shape.rank != bv->shape.rank || av->shape.dim0 != bv->shape.dim0 ||
        av->shape.dim1 != bv->shape.dim1) {
      return fail("result array " + std::to_string(i) + " shape");
    }
    for (std::size_t e = 0; e < av->elems.size(); ++e) {
      if (!av->elems[e].identical(bv->elems[e])) {
        return fail("result array " + std::to_string(i) + " element " +
                    std::to_string(e) + ": " + av->elems[e].str() + " vs " +
                    bv->elems[e].str());
      }
    }
  }
  return true;
}

PodsRun runPods(const Compiled& c, const sim::MachineConfig& config) {
  PodsRun run;
  sim::Machine machine(c.program, config);
  run.stats = machine.run();
  run.out = makeOutputs(
      run.stats.results,
      [&](ArrayId id) -> std::optional<ProgramOutputs::OutArray> {
        const sim::ArrayInfo* info = machine.arrays().find(id);
        if (!info) return std::nullopt;
        ProgramOutputs::OutArray a;
        a.shape = info->shape;
        a.elems = info->elems;
        return a;
      });
  return run;
}

namespace {

BaselineRun wrapBaseline(baseline::BaselineResult res) {
  BaselineRun run;
  run.out = makeOutputs(
      res.results,
      [&](ArrayId id) -> std::optional<ProgramOutputs::OutArray> {
        if (id >= res.arrays.size()) return std::nullopt;
        ProgramOutputs::OutArray a;
        a.shape = res.arrays[id].shape;
        a.elems = res.arrays[id].elems;
        return a;
      });
  run.stats = std::move(res);
  return run;
}

}  // namespace

BaselineRun runStaticBaseline(const Compiled& c, int numPEs,
                              const sim::Timing& timing) {
  return wrapBaseline(baseline::runStatic(c.graph, c.plan, numPEs, timing));
}

BaselineRun runSequentialBaseline(const Compiled& c, const sim::Timing& timing) {
  return wrapBaseline(baseline::runSequential(c.graph, timing));
}

NativeRun runNative(const Compiled& c, const native::NativeConfig& config) {
  NativeRun run;
  native::NativeMachine machine(c.program, config);
  run.stats = machine.run();
  run.out = makeOutputs(
      run.stats.results,
      [&](ArrayId id) -> std::optional<ProgramOutputs::OutArray> {
        std::optional<native::NativeArray> a = machine.gather(id);
        if (!a) return std::nullopt;
        ProgramOutputs::OutArray out;
        out.shape = a->shape;
        out.elems = std::move(a->elems);
        return out;
      });
  return run;
}

}  // namespace pods
