// Lowering of the analyzed IdLite AST into the hierarchical dataflow graph.
// This plays the role of the Id Nouveau compiler's graph generation stage.
#pragma once

#include "frontend/ast.hpp"
#include "ir/graph.hpp"
#include "support/diag.hpp"

namespace pods::ir {

/// Lowers an analyzed module (sema must have succeeded). Inline functions
/// have already been expanded away and are skipped.
Program buildGraph(const fe::Module& module, DiagSink& diags);

}  // namespace pods::ir
