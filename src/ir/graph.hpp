// Hierarchical dataflow-graph IR.
//
// This is the compiler's analogue of the paper's Figure-2 dataflow graph:
// a program is a set of *code blocks* (ir::Block), one per function body and
// one per loop-nest level, each entered through an L operator at run time.
// Within a block, computation is a list of dataflow nodes in three-address
// form; arcs are the def-use relations on ValIds (every ValId is a token).
// The loop index generation subgraph (switch / increment / D operators of
// Figure 2) is represented structurally by the Block's index/bounds/carried
// metadata, which is what the Range-Filter rewrite of Figure 5 manipulates.
//
// The PODS Translator orders each block's nodes by their arcs and emits one
// Subcompact Process per block (paper section 3).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "runtime/value.hpp"
#include "support/diag.hpp"

namespace pods::ir {

/// A dataflow value (token) within one function. Dense per function.
using ValId = std::uint32_t;
inline constexpr ValId kNoVal = 0xFFFFFFFFu;

enum class NodeOp : std::uint8_t {
  Const, Mov,
  Add, Sub, Mul, Div, Mod, Pow, Min, Max,
  Neg, Abs, Sqrt, Exp, Log, Sin, Cos, Floor, CvtI, CvtR,
  CmpLT, CmpLE, CmpGT, CmpGE, CmpEQ, CmpNE, And, Or, Not,
  Alloc,   // inputs: dims (1 or 2); allocates an I-structure
  ARead,   // inputs: arr, i0 (, i1)
  AWrite,  // inputs: arr, i0 (, i1), value; no dst
  Dim0,    // input: arr; its first dimension (rows / length)
  Dim1,    // input: arr; its second dimension (columns)
};

const char* nodeOpName(NodeOp op);

/// One dataflow instruction.
struct Node {
  NodeOp op = NodeOp::Const;
  ValId dst = kNoVal;
  ValId in[4] = {kNoVal, kNoVal, kNoVal, kNoVal};
  std::uint8_t nin = 0;
  Value imm{};  // Const payload
  SrcLoc loc{};
};

struct Block;
struct IfItem;
struct CallItem;

enum class ItemKind : std::uint8_t { Node, If, Call, Loop, Next };

/// One element of a block's body, in (re-orderable) dataflow order.
struct Item {
  ItemKind kind = ItemKind::Node;
  Node node;                        // ItemKind::Node
  std::unique_ptr<IfItem> ifi;      // ItemKind::If
  std::unique_ptr<CallItem> call;   // ItemKind::Call
  std::unique_ptr<Block> loop;      // ItemKind::Loop
  // ItemKind::Next: carried[carryIndex].shadow <- nextVal
  std::uint32_t carryIndex = 0;
  ValId nextVal = kNoVal;
};

/// A conditional region: the sequentialized switch operator. Both arms may
/// define values that are live afterwards (each arm defines them on its path).
struct IfItem {
  ValId cond = kNoVal;
  std::vector<Item> thenItems;
  std::vector<Item> elseItems;
  SrcLoc loc{};
};

/// A call to a (non-inline) user function: spawns the callee's SP.
struct CallItem {
  std::uint32_t fnIndex = 0;
  std::vector<ValId> args;
  ValId dst = kNoVal;  // kNoVal for void calls
  SrcLoc loc{};
};

/// One circulating loop variable. `cur` is the value read by the body this
/// iteration; `next x = e` writes `shadow`; the back edge moves shadow->cur.
struct Carried {
  ValId cur = kNoVal;
  ValId shadow = kNoVal;
  ValId init = kNoVal;  // computed in the parent block
};

enum class BlockKind : std::uint8_t { FunctionBody, ForLoop, WhileLoop };

/// A code block: the unit that becomes one Subcompact Process.
struct Block {
  BlockKind kind = BlockKind::FunctionBody;
  std::string name;  // for diagnostics and disassembly
  SrcLoc loc{};

  // For-loops: index variable and inclusive bounds (bounds computed in the
  // parent block and passed in as tokens through the L operator).
  bool ascending = true;
  ValId indexVal = kNoVal;
  ValId initVal = kNoVal;
  ValId limitVal = kNoVal;

  // While-loops: condition recomputed before every iteration.
  std::vector<Item> condItems;
  ValId condVal = kNoVal;

  std::vector<Carried> carried;
  std::vector<Item> body;

  // Yield: evaluated once after the loop completes (sees carried values).
  std::vector<Item> finalItems;
  ValId yieldVal = kNoVal;

  bool isLoop() const { return kind != BlockKind::FunctionBody; }
};

struct Function {
  std::string name;
  std::uint32_t numVals = 0;
  std::vector<ValId> params;  // one per parameter, in order
  std::vector<fe::Ty> paramTypes;
  fe::Ty retType = fe::Ty::Void;
  std::vector<ValId> retVals;  // 0, 1, or (main only) many
  Block body;                  // BlockKind::FunctionBody
};

struct Program {
  std::vector<Function> fns;
  std::uint32_t mainIndex = 0;

  const Function& main() const { return fns[mainIndex]; }
};

/// Walks every item list of a block subtree (body, condItems, finalItems,
/// if-arms, nested loops), invoking fn(item) in pre-order.
template <typename F>
void forEachItem(const Block& b, F&& fn) {
  auto walkList = [&](const std::vector<Item>& items, auto&& self) -> void {
    for (const Item& it : items) {
      fn(it);
      if (it.kind == ItemKind::If) {
        self(it.ifi->thenItems, self);
        self(it.ifi->elseItems, self);
      } else if (it.kind == ItemKind::Loop) {
        self(it.loop->condItems, self);
        self(it.loop->body, self);
        self(it.loop->finalItems, self);
      }
    }
  };
  walkList(b.condItems, walkList);
  walkList(b.body, walkList);
  walkList(b.finalItems, walkList);
}

/// Debug pretty-printer of a function's block tree.
std::string dumpFunction(const Function& fn);

}  // namespace pods::ir
