#include "ir/graph.hpp"

namespace pods::ir {

const char* nodeOpName(NodeOp op) {
  switch (op) {
    case NodeOp::Const: return "const";
    case NodeOp::Mov: return "mov";
    case NodeOp::Add: return "add";
    case NodeOp::Sub: return "sub";
    case NodeOp::Mul: return "mul";
    case NodeOp::Div: return "div";
    case NodeOp::Mod: return "mod";
    case NodeOp::Pow: return "pow";
    case NodeOp::Min: return "min";
    case NodeOp::Max: return "max";
    case NodeOp::Neg: return "neg";
    case NodeOp::Abs: return "abs";
    case NodeOp::Sqrt: return "sqrt";
    case NodeOp::Exp: return "exp";
    case NodeOp::Log: return "log";
    case NodeOp::Sin: return "sin";
    case NodeOp::Cos: return "cos";
    case NodeOp::Floor: return "floor";
    case NodeOp::CvtI: return "cvti";
    case NodeOp::CvtR: return "cvtr";
    case NodeOp::CmpLT: return "cmplt";
    case NodeOp::CmpLE: return "cmple";
    case NodeOp::CmpGT: return "cmpgt";
    case NodeOp::CmpGE: return "cmpge";
    case NodeOp::CmpEQ: return "cmpeq";
    case NodeOp::CmpNE: return "cmpne";
    case NodeOp::And: return "and";
    case NodeOp::Or: return "or";
    case NodeOp::Not: return "not";
    case NodeOp::Alloc: return "alloc";
    case NodeOp::ARead: return "aread";
    case NodeOp::AWrite: return "awrite";
    case NodeOp::Dim0: return "dim0";
    case NodeOp::Dim1: return "dim1";
  }
  return "?";
}

namespace {

std::string v(ValId id) {
  return id == kNoVal ? std::string("-") : "%" + std::to_string(id);
}

void dumpItems(const std::vector<Item>& items, int indent, std::string& out);

void dumpBlock(const Block& b, int indent, std::string& out) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  out += pad;
  switch (b.kind) {
    case BlockKind::FunctionBody: out += "function-body"; break;
    case BlockKind::ForLoop:
      out += "for " + v(b.indexVal) + " = " + v(b.initVal) +
             (b.ascending ? " to " : " downto ") + v(b.limitVal);
      break;
    case BlockKind::WhileLoop: out += "while " + v(b.condVal); break;
  }
  out += " '" + b.name + "'";
  for (const Carried& c : b.carried) {
    out += " carry(" + v(c.cur) + " init=" + v(c.init) + " shadow=" +
           v(c.shadow) + ")";
  }
  out += "\n";
  if (!b.condItems.empty()) {
    out += pad + " cond:\n";
    dumpItems(b.condItems, indent + 1, out);
  }
  dumpItems(b.body, indent + 1, out);
  if (!b.finalItems.empty() || b.yieldVal != kNoVal) {
    out += pad + " yield " + v(b.yieldVal) + ":\n";
    dumpItems(b.finalItems, indent + 1, out);
  }
}

void dumpItems(const std::vector<Item>& items, int indent, std::string& out) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  for (const Item& it : items) {
    switch (it.kind) {
      case ItemKind::Node: {
        const Node& n = it.node;
        out += pad;
        if (n.dst != kNoVal) out += v(n.dst) + " = ";
        out += nodeOpName(n.op);
        if (n.op == NodeOp::Const) out += " " + n.imm.str();
        for (std::uint8_t i = 0; i < n.nin; ++i) out += " " + v(n.in[i]);
        out += "\n";
        break;
      }
      case ItemKind::If:
        out += pad + "if " + v(it.ifi->cond) + "\n";
        dumpItems(it.ifi->thenItems, indent + 1, out);
        if (!it.ifi->elseItems.empty()) {
          out += pad + "else\n";
          dumpItems(it.ifi->elseItems, indent + 1, out);
        }
        break;
      case ItemKind::Call: {
        out += pad;
        if (it.call->dst != kNoVal) out += v(it.call->dst) + " = ";
        out += "call fn#" + std::to_string(it.call->fnIndex);
        for (ValId a : it.call->args) out += " " + v(a);
        out += "\n";
        break;
      }
      case ItemKind::Loop:
        dumpBlock(*it.loop, indent, out);
        break;
      case ItemKind::Next:
        out += pad + "next carry#" + std::to_string(it.carryIndex) + " <- " +
               v(it.nextVal) + "\n";
        break;
    }
  }
}

}  // namespace

std::string dumpFunction(const Function& fn) {
  std::string out = "fn " + fn.name + "(";
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (i) out += ", ";
    out += v(fn.params[i]);
  }
  out += ")";
  if (!fn.retVals.empty()) {
    out += " ->";
    for (ValId r : fn.retVals) out += " " + v(r);
  }
  out += "\n";
  dumpBlock(fn.body, 1, out);
  return out;
}

}  // namespace pods::ir
