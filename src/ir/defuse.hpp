// Def/use sets over graph items — the arc structure of the dataflow graph.
// Shared by the verifier, the LCD analysis, the partition planner, and the
// PODS Translator's topological ordering step.
#pragma once

#include <vector>

#include "ir/graph.hpp"

namespace pods::ir {

/// Values a whole item (including any nested region) may read that are not
/// produced inside it. For Loop items this includes the loop bounds and
/// carry initializers, which the parent computes and sends through L.
void itemUses(const Item& item, std::vector<ValId>& out);

/// Values an item makes available to subsequent items in the same list.
/// For If items these are the values both arms define (merge values); for
/// Loop items it is the yield value (if any).
void itemDefs(const Item& item, std::vector<ValId>& out);

/// All values defined anywhere inside a block (index var, carried cur/shadow,
/// every item def in cond/body/final lists, recursively *excluding* nested
/// blocks' interiors — a nested Loop contributes only its yield).
void blockDefs(const Block& b, std::vector<ValId>& out);

/// External uses of a block: every value its subtree reads that no part of
/// the subtree defines. These are exactly the tokens the parent must send
/// through the (possibly distributing) L operator.
std::vector<ValId> blockExternalUses(const Block& b);

}  // namespace pods::ir
