#include "ir/graphgen.hpp"

#include <unordered_map>

#include "support/check.hpp"

namespace pods::ir {

namespace {

class FnLowering {
 public:
  FnLowering(const fe::Module& module, const fe::FnDecl& fn,
             const std::unordered_map<const fe::FnDecl*, std::uint32_t>& fnIndex)
      : module_(module), fn_(fn), fnIndex_(fnIndex) {}

  Function run() {
    out_.name = fn_.name;
    out_.retType = fn_.retType;
    out_.body.kind = BlockKind::FunctionBody;
    out_.body.name = fn_.name;
    out_.body.loc = fn_.loc;
    target_ = &out_.body.body;
    for (const fe::Param& p : fn_.params) {
      ValId v = fresh();
      varMap_[p.varId] = v;
      out_.params.push_back(v);
      out_.paramTypes.push_back(p.type);
    }
    lowerStmts(fn_.body);
    out_.numVals = nextVal_;
    return std::move(out_);
  }

 private:
  ValId fresh() { return nextVal_++; }

  std::vector<Item>* target_ = nullptr;

  Item& emit() {
    target_->emplace_back();
    return target_->back();
  }

  ValId emitNode(NodeOp op, std::initializer_list<ValId> ins, SrcLoc loc,
                 Value imm = {}) {
    Item& it = emit();
    it.kind = ItemKind::Node;
    it.node.op = op;
    it.node.loc = loc;
    it.node.imm = imm;
    PODS_CHECK(ins.size() <= 4);
    std::uint8_t n = 0;
    for (ValId v : ins) it.node.in[n++] = v;
    it.node.nin = n;
    bool hasDst = op != NodeOp::AWrite;
    if (hasDst) it.node.dst = fresh();
    return it.node.dst;
  }

  // --- statements ----------------------------------------------------------

  void lowerStmts(const std::vector<fe::StmtPtr>& body) {
    for (const auto& s : body) lowerStmt(*s);
  }

  void lowerStmt(const fe::Stmt& s) {
    switch (s.kind) {
      case fe::StKind::Let: {
        ValId v = lowerExpr(*s.value);
        PODS_CHECK(s.varId >= 0);
        varMap_[s.varId] = v;
        break;
      }
      case fe::StKind::Next: {
        ValId v = lowerExpr(*s.value);
        // Find the carry index in the innermost loop block.
        PODS_CHECK_MSG(curLoop_, "next outside loop survived sema");
        std::uint32_t idx = carryIndex_.at(s.varId);
        Item& it = emit();
        it.kind = ItemKind::Next;
        it.carryIndex = idx;
        it.nextVal = v;
        break;
      }
      case fe::StKind::ArrayWrite: {
        ValId arr = useVar(s.varId);
        ValId i0 = lowerExpr(*s.subs[0]);
        ValId i1 = s.subs.size() > 1 ? lowerExpr(*s.subs[1]) : kNoVal;
        ValId val = lowerExpr(*s.value);
        if (i1 == kNoVal) {
          emitNode(NodeOp::AWrite, {arr, i0, val}, s.loc);
        } else {
          emitNode(NodeOp::AWrite, {arr, i0, i1, val}, s.loc);
        }
        break;
      }
      case fe::StKind::Return: {
        for (const auto& v : s.values) out_.retVals.push_back(lowerExpr(*v));
        break;
      }
      case fe::StKind::If: {
        ValId cond = lowerExpr(*s.cond);
        Item& it = emit();
        it.kind = ItemKind::If;
        it.ifi = std::make_unique<IfItem>();
        it.ifi->cond = cond;
        it.ifi->loc = s.loc;
        IfItem* ifi = it.ifi.get();
        withTarget(&ifi->thenItems, [&] { lowerStmts(s.thenBody); });
        withTarget(&ifi->elseItems, [&] { lowerStmts(s.elseBody); });
        break;
      }
      case fe::StKind::LoopStmt: {
        lowerLoop(*s.value->loop, /*wantValue=*/false, s.loc);
        break;
      }
      case fe::StKind::ExprStmt: {
        lowerExpr(*s.value);
        break;
      }
    }
  }

  template <typename F>
  void withTarget(std::vector<Item>* t, F&& f) {
    std::vector<Item>* saved = target_;
    target_ = t;
    f();
    target_ = saved;
  }

  // --- expressions ---------------------------------------------------------

  ValId useVar(int varId) {
    PODS_CHECK(varId >= 0);
    auto it = varMap_.find(varId);
    PODS_CHECK_MSG(it != varMap_.end(), "variable used before lowering");
    return it->second;
  }

  static NodeOp binNodeOp(fe::BinOp op) {
    switch (op) {
      case fe::BinOp::Add: return NodeOp::Add;
      case fe::BinOp::Sub: return NodeOp::Sub;
      case fe::BinOp::Mul: return NodeOp::Mul;
      case fe::BinOp::Div: return NodeOp::Div;
      case fe::BinOp::Mod: return NodeOp::Mod;
      case fe::BinOp::Lt: return NodeOp::CmpLT;
      case fe::BinOp::Le: return NodeOp::CmpLE;
      case fe::BinOp::Gt: return NodeOp::CmpGT;
      case fe::BinOp::Ge: return NodeOp::CmpGE;
      case fe::BinOp::Eq: return NodeOp::CmpEQ;
      case fe::BinOp::Ne: return NodeOp::CmpNE;
      case fe::BinOp::And: return NodeOp::And;
      case fe::BinOp::Or: return NodeOp::Or;
    }
    PODS_UNREACHABLE("bad binop");
  }

  ValId lowerExpr(const fe::Expr& e) {
    switch (e.kind) {
      case fe::ExKind::IntLit:
        return emitNode(NodeOp::Const, {}, e.loc, Value::intv(e.ival));
      case fe::ExKind::RealLit:
        return emitNode(NodeOp::Const, {}, e.loc, Value::realv(e.fval));
      case fe::ExKind::Var:
        return useVar(e.varId);
      case fe::ExKind::Unary: {
        ValId a = lowerExpr(*e.args[0]);
        return emitNode(e.uop == fe::UnOp::Neg ? NodeOp::Neg : NodeOp::Not, {a},
                        e.loc);
      }
      case fe::ExKind::Binary: {
        ValId a = lowerExpr(*e.args[0]);
        ValId b = lowerExpr(*e.args[1]);
        return emitNode(binNodeOp(e.bop), {a, b}, e.loc);
      }
      case fe::ExKind::Call:
        return lowerCall(e);
      case fe::ExKind::Index: {
        ValId arr = useVar(e.varId);
        ValId i0 = lowerExpr(*e.args[0]);
        if (e.args.size() > 1) {
          ValId i1 = lowerExpr(*e.args[1]);
          return emitNode(NodeOp::ARead, {arr, i0, i1}, e.loc);
        }
        return emitNode(NodeOp::ARead, {arr, i0}, e.loc);
      }
      case fe::ExKind::IfExpr: {
        ValId cond = lowerExpr(*e.args[0]);
        ValId merged = fresh();
        Item& it = emit();
        it.kind = ItemKind::If;
        it.ifi = std::make_unique<IfItem>();
        it.ifi->cond = cond;
        it.ifi->loc = e.loc;
        IfItem* ifi = it.ifi.get();
        withTarget(&ifi->thenItems, [&] {
          ValId v = lowerExpr(*e.args[1]);
          Item& mv = emit();
          mv.kind = ItemKind::Node;
          mv.node.op = NodeOp::Mov;
          mv.node.in[0] = v;
          mv.node.nin = 1;
          mv.node.dst = merged;
          mv.node.loc = e.loc;
        });
        withTarget(&ifi->elseItems, [&] {
          ValId v = lowerExpr(*e.args[2]);
          Item& mv = emit();
          mv.kind = ItemKind::Node;
          mv.node.op = NodeOp::Mov;
          mv.node.in[0] = v;
          mv.node.nin = 1;
          mv.node.dst = merged;
          mv.node.loc = e.loc;
        });
        return merged;
      }
      case fe::ExKind::Loop:
        return lowerLoop(*e.loop, /*wantValue=*/true, e.loc);
    }
    PODS_UNREACHABLE("bad expr kind");
  }

  ValId lowerCall(const fe::Expr& e) {
    // Builtins lower to plain nodes.
    switch (e.builtin) {
      case fe::Builtin::None:
        break;
      case fe::Builtin::ArrayAlloc: {
        ValId d0 = lowerExpr(*e.args[0]);
        return emitNode(NodeOp::Alloc, {d0}, e.loc);
      }
      case fe::Builtin::MatrixAlloc: {
        ValId d0 = lowerExpr(*e.args[0]);
        ValId d1 = lowerExpr(*e.args[1]);
        return emitNode(NodeOp::Alloc, {d0, d1}, e.loc);
      }
      default: {
        NodeOp op;
        switch (e.builtin) {
          case fe::Builtin::Sqrt: op = NodeOp::Sqrt; break;
          case fe::Builtin::Abs: op = NodeOp::Abs; break;
          case fe::Builtin::Exp: op = NodeOp::Exp; break;
          case fe::Builtin::Log: op = NodeOp::Log; break;
          case fe::Builtin::Sin: op = NodeOp::Sin; break;
          case fe::Builtin::Cos: op = NodeOp::Cos; break;
          case fe::Builtin::Floor: op = NodeOp::Floor; break;
          case fe::Builtin::Min: op = NodeOp::Min; break;
          case fe::Builtin::Max: op = NodeOp::Max; break;
          case fe::Builtin::Pow: op = NodeOp::Pow; break;
          case fe::Builtin::ToReal: op = NodeOp::CvtR; break;
          case fe::Builtin::ToInt: op = NodeOp::CvtI; break;
          case fe::Builtin::Len:
          case fe::Builtin::Rows: op = NodeOp::Dim0; break;
          case fe::Builtin::Cols: op = NodeOp::Dim1; break;
          default: PODS_UNREACHABLE("bad builtin");
        }
        if (e.args.size() == 2) {
          ValId a = lowerExpr(*e.args[0]);
          ValId b = lowerExpr(*e.args[1]);
          return emitNode(op, {a, b}, e.loc);
        }
        ValId a = lowerExpr(*e.args[0]);
        return emitNode(op, {a}, e.loc);
      }
    }
    // User function call: an L-entered code block of its own. Arguments are
    // lowered first so the item list stays in dependency order.
    PODS_CHECK(e.callee != nullptr);
    std::vector<ValId> args;
    args.reserve(e.args.size());
    for (const auto& a : e.args) args.push_back(lowerExpr(*a));
    Item& it = emit();
    it.kind = ItemKind::Call;
    it.call = std::make_unique<CallItem>();
    it.call->fnIndex = fnIndex_.at(e.callee);
    it.call->loc = e.loc;
    it.call->args = std::move(args);
    if (e.type != fe::Ty::Void) it.call->dst = fresh();
    return it.call->dst;
  }

  ValId lowerLoop(const fe::LoopInfo& li, bool wantValue, SrcLoc loc) {
    // Bounds and carry initializers are computed in the *parent* block.
    ValId init = kNoVal, limit = kNoVal;
    if (li.isFor) {
      init = lowerExpr(*li.init);
      limit = lowerExpr(*li.limit);
    }
    std::vector<ValId> carryInits;
    carryInits.reserve(li.carries.size());
    for (const auto& c : li.carries) carryInits.push_back(lowerExpr(*c.init));

    Item& it = emit();
    it.kind = ItemKind::Loop;
    it.loop = std::make_unique<Block>();
    Block* blk = it.loop.get();
    blk->kind = li.isFor ? BlockKind::ForLoop : BlockKind::WhileLoop;
    blk->ascending = li.ascending;
    blk->loc = loc;
    blk->name = fn_.name + "/" + (li.isFor ? li.indexName : "while") + "#" +
                std::to_string(loopCounter_++);
    blk->initVal = init;
    blk->limitVal = limit;
    if (li.isFor) {
      blk->indexVal = fresh();
      varMap_[li.indexVarId] = blk->indexVal;
    }
    for (std::size_t i = 0; i < li.carries.size(); ++i) {
      Carried c;
      c.cur = fresh();
      c.shadow = fresh();
      c.init = carryInits[i];
      varMap_[li.carries[i].varId] = c.cur;
      carryIndex_[li.carries[i].varId] = static_cast<std::uint32_t>(i);
      blk->carried.push_back(c);
    }
    Block* savedLoop = curLoop_;
    curLoop_ = blk;
    if (!li.isFor) {
      withTarget(&blk->condItems, [&] { blk->condVal = lowerExpr(*li.cond); });
    }
    withTarget(&blk->body, [&] { lowerStmts(li.body); });
    curLoop_ = savedLoop;
    if (li.yieldExpr) {
      withTarget(&blk->finalItems,
                 [&] { blk->yieldVal = lowerExpr(*li.yieldExpr); });
    }
    if (wantValue) {
      PODS_CHECK_MSG(blk->yieldVal != kNoVal,
                     "loop used as value without yield survived sema");
    }
    return blk->yieldVal;
  }

  const fe::Module& module_;
  const fe::FnDecl& fn_;
  const std::unordered_map<const fe::FnDecl*, std::uint32_t>& fnIndex_;
  Function out_;
  ValId nextVal_ = 0;
  std::unordered_map<int, ValId> varMap_;
  std::unordered_map<int, std::uint32_t> carryIndex_;
  Block* curLoop_ = nullptr;
  int loopCounter_ = 0;
};

}  // namespace

Program buildGraph(const fe::Module& module, DiagSink& diags) {
  Program prog;
  std::unordered_map<const fe::FnDecl*, std::uint32_t> fnIndex;
  std::uint32_t next = 0;
  for (const auto& fn : module.fns) {
    if (fn->isInline) continue;
    fnIndex[fn.get()] = next++;
  }
  bool haveMain = false;
  for (const auto& fn : module.fns) {
    if (fn->isInline) continue;
    if (fn->name == "main") {
      prog.mainIndex = static_cast<std::uint32_t>(prog.fns.size());
      haveMain = true;
    }
    prog.fns.push_back(FnLowering(module, *fn, fnIndex).run());
  }
  if (!haveMain) diags.error({}, "no 'main' function to lower");
  return prog;
}

}  // namespace pods::ir
