// Structural verifier for the dataflow graph IR: def-before-use in the
// current item order, operand presence, range checks, and merge-value rules
// for conditional arms. Run after graphgen and after any reordering.
#pragma once

#include <string>

#include "ir/graph.hpp"

namespace pods::ir {

/// Returns true if the program is well-formed; otherwise fills `err`.
bool verify(const Program& prog, std::string& err);

}  // namespace pods::ir
