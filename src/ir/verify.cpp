// Def/use computation and the structural verifier for the dataflow graph.
#include <algorithm>
#include <string>
#include <unordered_set>

#include "ir/defuse.hpp"
#include "ir/verify.hpp"
#include "support/check.hpp"

namespace pods::ir {

namespace {

void listUses(const std::vector<Item>& items, std::vector<ValId>& out);
void listDefs(const std::vector<Item>& items, std::vector<ValId>& out);

void nodeUses(const Node& n, std::vector<ValId>& out) {
  for (std::uint8_t i = 0; i < n.nin; ++i)
    if (n.in[i] != kNoVal) out.push_back(n.in[i]);
}

}  // namespace

void itemUses(const Item& item, std::vector<ValId>& out) {
  switch (item.kind) {
    case ItemKind::Node:
      nodeUses(item.node, out);
      break;
    case ItemKind::If: {
      out.push_back(item.ifi->cond);
      // Uses of the arms minus what the arms define internally.
      std::vector<ValId> uses, defs;
      listUses(item.ifi->thenItems, uses);
      listUses(item.ifi->elseItems, uses);
      listDefs(item.ifi->thenItems, defs);
      listDefs(item.ifi->elseItems, defs);
      std::unordered_set<ValId> defSet(defs.begin(), defs.end());
      for (ValId u : uses)
        if (!defSet.count(u)) out.push_back(u);
      break;
    }
    case ItemKind::Call:
      for (ValId a : item.call->args) out.push_back(a);
      break;
    case ItemKind::Loop: {
      const Block& b = *item.loop;
      if (b.initVal != kNoVal) out.push_back(b.initVal);
      if (b.limitVal != kNoVal) out.push_back(b.limitVal);
      for (const Carried& c : b.carried) out.push_back(c.init);
      for (ValId v : blockExternalUses(b)) out.push_back(v);
      break;
    }
    case ItemKind::Next:
      out.push_back(item.nextVal);
      break;
  }
}

void itemDefs(const Item& item, std::vector<ValId>& out) {
  switch (item.kind) {
    case ItemKind::Node:
      if (item.node.dst != kNoVal) out.push_back(item.node.dst);
      break;
    case ItemKind::If:
      listDefs(item.ifi->thenItems, out);
      listDefs(item.ifi->elseItems, out);
      break;
    case ItemKind::Call:
      if (item.call->dst != kNoVal) out.push_back(item.call->dst);
      break;
    case ItemKind::Loop:
      if (item.loop->yieldVal != kNoVal) out.push_back(item.loop->yieldVal);
      break;
    case ItemKind::Next:
      break;  // writes the block-level shadow, not a new value
  }
}

namespace {

void listUses(const std::vector<Item>& items, std::vector<ValId>& out) {
  for (const Item& it : items) itemUses(it, out);
}

void listDefs(const std::vector<Item>& items, std::vector<ValId>& out) {
  for (const Item& it : items) itemDefs(it, out);
}

}  // namespace

void blockDefs(const Block& b, std::vector<ValId>& out) {
  if (b.indexVal != kNoVal) out.push_back(b.indexVal);
  for (const Carried& c : b.carried) {
    out.push_back(c.cur);
    out.push_back(c.shadow);
  }
  listDefs(b.condItems, out);
  listDefs(b.body, out);
  listDefs(b.finalItems, out);
}

std::vector<ValId> blockExternalUses(const Block& b) {
  std::vector<ValId> uses, defs;
  listUses(b.condItems, uses);
  listUses(b.body, uses);
  listUses(b.finalItems, uses);
  if (b.condVal != kNoVal) uses.push_back(b.condVal);
  if (b.yieldVal != kNoVal) uses.push_back(b.yieldVal);
  blockDefs(b, defs);
  std::unordered_set<ValId> defSet(defs.begin(), defs.end());
  std::vector<ValId> out;
  std::unordered_set<ValId> seen;
  for (ValId u : uses) {
    if (!defSet.count(u) && seen.insert(u).second) out.push_back(u);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Verifier
// ---------------------------------------------------------------------------

namespace {

class Verifier {
 public:
  Verifier(const Function& fn, std::string& err) : fn_(fn), err_(err) {}

  bool run() {
    for (ValId p : fn_.params) define(p);
    if (!checkBlock(fn_.body)) return false;
    for (ValId r : fn_.retVals) {
      if (!isDefined(r)) return fail("return value %" + std::to_string(r) +
                                     " is never defined");
    }
    return true;
  }

 private:
  bool fail(std::string msg) {
    err_ = "ir verify (" + fn_.name + "): " + std::move(msg);
    return false;
  }

  void define(ValId v) { defined_.insert(v); }
  bool isDefined(ValId v) const { return defined_.count(v) != 0; }

  bool checkVal(ValId v, const char* what) {
    if (v == kNoVal) return fail(std::string("missing ") + what);
    if (v >= fn_.numVals)
      return fail(std::string(what) + " %" + std::to_string(v) +
                  " out of range");
    if (!isDefined(v))
      return fail(std::string(what) + " %" + std::to_string(v) +
                  " used before definition");
    return true;
  }

  bool checkBlock(const Block& b) {
    if (b.kind == BlockKind::ForLoop) {
      if (!checkVal(b.initVal, "loop init") || !checkVal(b.limitVal, "loop limit"))
        return false;
      define(b.indexVal);
    }
    for (const Carried& c : b.carried) {
      if (!checkVal(c.init, "carry init")) return false;
      define(c.cur);
      define(c.shadow);
    }
    if (b.kind == BlockKind::WhileLoop) {
      if (!checkItems(b.condItems)) return false;
      if (!checkVal(b.condVal, "while condition")) return false;
    }
    if (!checkItems(b.body)) return false;
    if (!checkItems(b.finalItems)) return false;
    if (b.yieldVal != kNoVal && !checkVal(b.yieldVal, "yield value"))
      return false;
    return true;
  }

  bool checkItems(const std::vector<Item>& items) {
    for (const Item& it : items) {
      switch (it.kind) {
        case ItemKind::Node: {
          const Node& n = it.node;
          for (std::uint8_t i = 0; i < n.nin; ++i) {
            if (!checkVal(n.in[i], "operand")) return false;
          }
          if (n.op == NodeOp::AWrite) {
            if (n.dst != kNoVal) return fail("awrite must not define a value");
          } else {
            if (n.dst == kNoVal) return fail("node missing destination");
            define(n.dst);
          }
          break;
        }
        case ItemKind::If: {
          if (!checkVal(it.ifi->cond, "if condition")) return false;
          // Arms check independently; merge values (defined in both arms)
          // become visible afterwards. Values defined in only one arm are
          // scoped to that arm by sema; we expose the intersection.
          std::unordered_set<ValId> before = defined_;
          if (!checkItems(it.ifi->thenItems)) return false;
          std::unordered_set<ValId> afterThen = std::move(defined_);
          defined_ = before;
          if (!checkItems(it.ifi->elseItems)) return false;
          std::unordered_set<ValId> afterElse = std::move(defined_);
          defined_ = std::move(before);
          for (ValId v : afterThen) {
            if (afterElse.count(v)) defined_.insert(v);
          }
          break;
        }
        case ItemKind::Call: {
          if (it.call->fnIndex >= fnCount_)
            return fail("call to unknown function index");
          for (ValId a : it.call->args) {
            if (!checkVal(a, "call argument")) return false;
          }
          if (it.call->dst != kNoVal) define(it.call->dst);
          break;
        }
        case ItemKind::Loop: {
          if (!checkBlock(*it.loop)) return false;
          if (it.loop->yieldVal != kNoVal) define(it.loop->yieldVal);
          break;
        }
        case ItemKind::Next: {
          if (!checkVal(it.nextVal, "next value")) return false;
          break;
        }
      }
    }
    return true;
  }

  const Function& fn_;
  std::string& err_;
  std::unordered_set<ValId> defined_;

 public:
  std::size_t fnCount_ = 0;
};

}  // namespace

bool verify(const Program& prog, std::string& err) {
  for (const Function& fn : prog.fns) {
    Verifier v(fn, err);
    v.fnCount_ = prog.fns.size();
    if (!v.run()) return false;
  }
  if (prog.mainIndex >= prog.fns.size()) {
    err = "ir verify: main index out of range";
    return false;
  }
  return true;
}

}  // namespace pods::ir
