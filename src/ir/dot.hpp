// Graphviz rendering of the dataflow graph (for documentation and the
// partitioning demo example; compare with the paper's Figure 2).
#pragma once

#include <string>

#include "ir/graph.hpp"

namespace pods::ir {

/// Renders one function's block tree as a graphviz digraph with one cluster
/// per code block (scope), mirroring the paper's Figure 2 presentation.
std::string toDot(const Function& fn);

}  // namespace pods::ir
