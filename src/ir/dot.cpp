#include "ir/dot.hpp"

#include <unordered_map>

namespace pods::ir {

namespace {

class DotWriter {
 public:
  explicit DotWriter(const Function& fn) : fn_(fn) {}

  std::string run() {
    out_ += "digraph \"" + fn_.name + "\" {\n";
    out_ += "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
    for (std::size_t i = 0; i < fn_.params.size(); ++i) {
      std::string id = defineNode(fn_.params[i], "param " + std::to_string(i));
      (void)id;
    }
    writeBlock(fn_.body);
    for (ValId r : fn_.retVals) {
      std::string id = "ret" + std::to_string(r);
      out_ += "  " + id + " [label=\"return\", shape=ellipse];\n";
      edge(r, id);
    }
    out_ += "}\n";
    return std::move(out_);
  }

 private:
  std::string defineNode(ValId v, const std::string& label) {
    std::string id = "v" + std::to_string(v);
    producer_[v] = id;
    out_ += indent() + id + " [label=\"" + label + "\"];\n";
    return id;
  }

  void edge(ValId from, const std::string& toId) {
    auto it = producer_.find(from);
    if (it == producer_.end()) return;
    out_ += indent() + it->second + " -> " + toId + ";\n";
  }

  std::string indent() const { return std::string(depth_ * 2 + 2, ' '); }

  void writeBlock(const Block& b) {
    out_ += indent() + "subgraph cluster_" + std::to_string(cluster_++) + " {\n";
    ++depth_;
    std::string kind;
    switch (b.kind) {
      case BlockKind::FunctionBody: kind = "function"; break;
      case BlockKind::ForLoop: kind = b.ascending ? "for" : "for (down)"; break;
      case BlockKind::WhileLoop: kind = "while"; break;
    }
    out_ += indent() + "label=\"" + kind + " " + b.name + "\";\n";
    if (b.indexVal != kNoVal) defineNode(b.indexVal, "index");
    for (std::size_t i = 0; i < b.carried.size(); ++i) {
      std::string id = defineNode(b.carried[i].cur, "carry " + std::to_string(i));
      edge(b.carried[i].init, id);
    }
    writeItems(b.condItems);
    writeItems(b.body);
    writeItems(b.finalItems);
    --depth_;
    out_ += indent() + "}\n";
  }

  void writeItems(const std::vector<Item>& items) {
    for (const Item& it : items) {
      switch (it.kind) {
        case ItemKind::Node: {
          const Node& n = it.node;
          std::string label = nodeOpName(n.op);
          if (n.op == NodeOp::Const) label += " " + n.imm.str();
          std::string id;
          if (n.dst != kNoVal) {
            id = defineNode(n.dst, label);
          } else {
            id = "w" + std::to_string(anon_++);
            out_ += indent() + id + " [label=\"" + label + "\"];\n";
          }
          for (std::uint8_t i = 0; i < n.nin; ++i) edge(n.in[i], id);
          break;
        }
        case ItemKind::If: {
          std::string id = "sw" + std::to_string(anon_++);
          out_ += indent() + id + " [label=\"switch\", shape=diamond];\n";
          edge(it.ifi->cond, id);
          writeItems(it.ifi->thenItems);
          writeItems(it.ifi->elseItems);
          break;
        }
        case ItemKind::Call: {
          std::string label = "call fn#" + std::to_string(it.call->fnIndex);
          std::string id;
          if (it.call->dst != kNoVal) {
            id = defineNode(it.call->dst, label);
          } else {
            id = "c" + std::to_string(anon_++);
            out_ += indent() + id + " [label=\"" + label + "\"];\n";
          }
          for (ValId a : it.call->args) edge(a, id);
          break;
        }
        case ItemKind::Loop:
          writeBlock(*it.loop);
          break;
        case ItemKind::Next: {
          std::string id = "nx" + std::to_string(anon_++);
          out_ += indent() + id + " [label=\"D (next carry#" +
                  std::to_string(it.carryIndex) + ")\", shape=ellipse];\n";
          edge(it.nextVal, id);
          break;
        }
      }
    }
  }

  const Function& fn_;
  std::string out_;
  std::unordered_map<ValId, std::string> producer_;
  int cluster_ = 0;
  int anon_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string toDot(const Function& fn) { return DotWriter(fn).run(); }

}  // namespace pods::ir
