// Ablation: page size.
//
// Section 4.1: "the best page size has been determined to be 32 elements...
// (Previous studies have shown that this is not a critical parameter
// [Bic89])". Sweep the page size on SIMPLE and report total time, page
// traffic and cache hits. Results must be identical regardless of page size
// (Church-Rosser); only timing may move, and only mildly.
#include "bench_common.hpp"
#include "workloads/simple.hpp"

using namespace pods;

int main() {
  bench::header("Ablation — array page size",
                "paper section 4.1: 32 elements, 'not a critical parameter'");
  const int n = bench::smallMode() ? 16 : 32;
  const int pes = 16;
  CompileResult cr = compile(workloads::simpleSource(n, 1));
  Compiled& c = bench::compileOrDie(cr, "SIMPLE");
  BaselineRun seq = runSequentialBaseline(c);

  TextTable table({"page elems", "time (ms)", "vs 32", "pages sent",
                   "cache hits", "remote reads"});
  double base32 = 0.0;
  std::vector<std::pair<int, PodsRun>> runs;
  for (int page : {4, 8, 16, 32, 64, 128}) {
    sim::MachineConfig mc;
    mc.numPEs = pes;
    mc.timing.pageElems = page;
    PodsRun run = bench::runOrDie(c, mc, "SIMPLE");
    std::string why;
    if (!sameOutputs(run.out, seq.out, &why)) {
      std::fprintf(stderr, "page=%d wrong result: %s\n", page, why.c_str());
      return 1;
    }
    if (page == 32) base32 = run.stats.total.ms();
    runs.emplace_back(page, std::move(run));
  }
  for (auto& [page, run] : runs) {
    table.row()
        .cell(std::int64_t{page})
        .cell(run.stats.total.ms(), 2)
        .cell(run.stats.total.ms() / base32, 2)
        .cell(run.stats.counters.get("array.pagesSent"))
        .cell(run.stats.counters.get("array.reads.cacheHit"))
        .cell(run.stats.counters.get("array.reads.remote"));
  }
  table.print();
  std::printf("\n(%dx%d SIMPLE, %d PEs; identical outputs at every size)\n\n",
              n, n, pes);
  return 0;
}
