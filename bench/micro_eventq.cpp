// Micro-benchmarks (google-benchmark) of the simulator event engine: the
// calendar queue against the reference std::priority_queue under the classic
// hold model (steady-state pop-one push-one at a future deadline), and the
// two engines end-to-end through an 8-PE simulated run. These measure the
// *host-side* cost of event dispatch, not simulated time.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "core/pods.hpp"
#include "sim/event_queue.hpp"
#include "workloads/kernels.hpp"

namespace {

// Roughly the footprint of a sim Ev payload, so the slab/heap traffic of the
// two engines is compared on even terms.
struct Payload {
  std::uint64_t words[6] = {};
};

std::uint64_t lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  return s >> 33;
}

// Hold-model deltas: mostly near-future (compute/net latencies), with an
// occasional far-future retransmit-backoff-shaped outlier. Mirrors the
// distribution the simulator actually feeds the queue.
std::int64_t holdDelta(std::uint64_t& rng) {
  if (lcg(rng) % 64 == 0)
    return static_cast<std::int64_t>(lcg(rng) % 40'000'000);
  return static_cast<std::int64_t>(lcg(rng) % 30'000);
}

void BM_CalendarHold(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  pods::sim::CalendarQueue<Payload> q;
  std::uint64_t rng = 42, seq = 0;
  std::int64_t now = 0;
  for (std::size_t i = 0; i < depth; ++i)
    q.push({holdDelta(rng), ++seq}, Payload{});
  for (auto _ : state) {
    pods::sim::EvKey k;
    Payload p = q.pop(&k);
    benchmark::DoNotOptimize(p);
    now = k.t;
    q.push({now + holdDelta(rng), ++seq}, Payload{});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalendarHold)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_HeapHold(benchmark::State& state) {
  struct Ent {
    pods::sim::EvKey key;
    Payload p;
  };
  struct Later {
    bool operator()(const Ent& a, const Ent& b) const { return b.key < a.key; }
  };
  const auto depth = static_cast<std::size_t>(state.range(0));
  std::priority_queue<Ent, std::vector<Ent>, Later> q;
  std::uint64_t rng = 42, seq = 0;
  std::int64_t now = 0;
  for (std::size_t i = 0; i < depth; ++i)
    q.push({{holdDelta(rng), ++seq}, Payload{}});
  for (auto _ : state) {
    Ent e = q.top();
    q.pop();
    benchmark::DoNotOptimize(e);
    now = e.key.t;
    q.push({{now + holdDelta(rng), ++seq}, Payload{}});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapHold)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

// End-to-end: the same 8-PE workload through both engines. The delta here is
// the whole-run win (or cost) of the calendar engine, timer collapse
// included; bit-identical outputs are asserted by the fuzz suites, not here.
void BM_SimFill2d(benchmark::State& state, pods::sim::EventEngine engine) {
  auto cr = pods::compile(pods::workloads::fill2dSource(32, 32));
  std::uint64_t events = 0;
  for (auto _ : state) {
    pods::sim::MachineConfig mc;
    mc.numPEs = 8;
    mc.eventEngine = engine;
    pods::PodsRun run = pods::runPods(*cr.compiled, mc);
    events += run.stats.events;
    benchmark::DoNotOptimize(run);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
void BM_SimFill2d_Calendar(benchmark::State& state) {
  BM_SimFill2d(state, pods::sim::EventEngine::Calendar);
}
void BM_SimFill2d_Heap(benchmark::State& state) {
  BM_SimFill2d(state, pods::sim::EventEngine::BinaryHeap);
}
BENCHMARK(BM_SimFill2d_Calendar);
BENCHMARK(BM_SimFill2d_Heap);

}  // namespace

BENCHMARK_MAIN();
