# One binary per table/figure of the paper's evaluation, plus ablations and
# a google-benchmark micro suite. Binaries land in build/bench/.
function(pods_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE pods)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

pods_bench(table_instruction_times)
pods_bench(fig8_unit_balance)
pods_bench(fig9_eu_utilization)
pods_bench(fig10_speedup)
pods_bench(tab_efficiency)
pods_bench(ablate_page_size)
pods_bench(ablate_caching)
pods_bench(ablate_rf_placement)
pods_bench(ablate_batching)
pods_bench(livermore_speedup)
pods_bench(micro_serve)
pods_bench(micro_engine)
target_link_libraries(micro_engine PRIVATE benchmark::benchmark)
pods_bench(micro_eventq)
target_link_libraries(micro_eventq PRIVATE benchmark::benchmark)
