// Figure 9: Execution Unit utilization for SIMPLE.
//
// EU utilization versus PE count for the three problem sizes. The paper
// reports ~70% at 1 PE falling to ~50% at 32 PEs for 64x64, with smaller
// problems showing lower utilization at large machine sizes — while the
// program continues to speed up even at 50% idle EUs.
#include "bench_common.hpp"
#include "workloads/simple.hpp"

using namespace pods;

int main() {
  bench::header("Figure 9 — Execution Unit utilization for SIMPLE",
                "paper section 5.3.2");
  std::vector<int> sizes = bench::problemSizes();
  std::vector<std::string> cols = {"PEs"};
  for (int n : sizes) {
    cols.push_back(std::to_string(n) + "x" + std::to_string(n) + " EU %");
  }
  TextTable table(cols);

  std::vector<std::vector<double>> util(sizes.size());
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    CompileResult cr = compile(workloads::simpleSource(sizes[si], 1));
    Compiled& c = bench::compileOrDie(cr, "SIMPLE");
    for (int pes : bench::peCounts()) {
      sim::MachineConfig mc;
      mc.numPEs = pes;
      PodsRun run = bench::runOrDie(c, mc, "SIMPLE");
      util[si].push_back(100.0 * run.stats.avgUtilization(sim::Unit::EU));
    }
  }
  const auto pes = bench::peCounts();
  for (std::size_t i = 0; i < pes.size(); ++i) {
    table.row().cell(std::int64_t{pes[i]});
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      table.cell(util[si][i], 2);
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: utilization falls with PE count and rises with\n"
      "problem size (paper: 64x64 from ~70%% at 1 PE to ~50%% at 32 PEs).\n\n");
  return 0;
}
