// Figure 8: Average utilization of each functional unit.
//
// SIMPLE on a 16x16 mesh, 1..32 PEs: fraction of time each per-PE unit
// (EU, MU, MM, AM, RU) is busy, averaged over PEs. The paper's finding is
// that the Execution Unit dominates at every machine size, implying the
// supporting units can be plain software on the same processor.
#include "bench_common.hpp"
#include "workloads/simple.hpp"

using namespace pods;

int main() {
  bench::header("Figure 8 — Average utilization of each functional unit",
                "paper section 5.3.1; SIMPLE 16x16");
  CompileResult cr = compile(workloads::simpleSource(16, 1));
  Compiled& c = bench::compileOrDie(cr, "SIMPLE 16x16");

  TextTable table({"PEs", "EU %", "MU %", "MM %", "AM %", "RU %"});
  bool euAlwaysDominates = true;
  for (int pes : bench::peCounts()) {
    sim::MachineConfig mc;
    mc.numPEs = pes;
    PodsRun run = bench::runOrDie(c, mc, "SIMPLE 16x16");
    auto pct = [&](sim::Unit u) { return 100.0 * run.stats.avgUtilization(u); };
    table.row()
        .cell(std::int64_t{pes})
        .cell(pct(sim::Unit::EU), 2)
        .cell(pct(sim::Unit::MU), 2)
        .cell(pct(sim::Unit::MM), 2)
        .cell(pct(sim::Unit::AM), 2)
        .cell(pct(sim::Unit::RU), 2);
    for (sim::Unit u : {sim::Unit::MU, sim::Unit::MM, sim::Unit::AM,
                        sim::Unit::RU}) {
      if (pct(u) > pct(sim::Unit::EU)) euAlwaysDominates = false;
    }
  }
  table.print();
  std::printf(
      "\nEU is the most heavily utilized unit at every PE count: %s\n"
      "(paper: \"there is no need for any specialized hardware units\")\n\n",
      euAlwaysDominates ? "yes" : "NO — model divergence!");
  return 0;
}
