// Extension bench: iteration-level parallelism across Livermore-style
// kernels.
//
// Not a figure from the paper, but its thesis quantified on the classic
// LLNL probe set: kernels without loop-carried dependencies (hydro
// fragment, equation of state, first difference) distribute and speed up;
// the recurrences (inner product, tri-diagonal elimination, first sum)
// expose no iteration-level parallelism and stay flat — PODS extracts
// exactly what the dependence structure allows.
#include "bench_common.hpp"
#include "workloads/livermore.hpp"

using namespace pods;

int main() {
  bench::header("Extension — Livermore kernels: speed-up on 1..32 PEs",
                "iteration-level parallelism vs dependence structure");
  const int n = bench::smallMode() ? 512 : 2048;
  std::vector<std::string> cols = {"PEs"};
  for (const auto& k : workloads::livermoreKernels()) {
    cols.push_back("K" + std::to_string(k.number) +
                   (k.parallel ? "" : " (LCD)"));
  }
  TextTable table(cols);

  std::vector<std::vector<double>> times(workloads::livermoreKernels().size());
  std::size_t ki = 0;
  for (const auto& k : workloads::livermoreKernels()) {
    CompileResult cr = compile(workloads::livermoreSource(k.number, n));
    Compiled& c = bench::compileOrDie(cr, k.name);
    BaselineRun seq = runSequentialBaseline(c);
    for (int pes : bench::peCounts()) {
      sim::MachineConfig mc;
      mc.numPEs = pes;
      PodsRun run = bench::runOrDie(c, mc, k.name);
      std::string why;
      if (!sameOutputs(run.out, seq.out, &why)) {
        std::fprintf(stderr, "K%d pes=%d wrong: %s\n", k.number, pes,
                     why.c_str());
        return 1;
      }
      times[ki].push_back(run.stats.total.ms());
    }
    ++ki;
  }
  const auto pes = bench::peCounts();
  for (std::size_t i = 0; i < pes.size(); ++i) {
    table.row().cell(std::int64_t{pes[i]});
    for (std::size_t kk = 0; kk < times.size(); ++kk) {
      table.cell(times[kk][0] / times[kk][i], 2);
    }
  }
  table.print();
  std::printf(
      "\n(n = %d; kernels marked LCD carry a dependency and cannot "
      "distribute —\ntheir input fill still does, so small residual "
      "speed-ups remain.)\n\n",
      n);
  return 0;
}
