// Ablation: token batching in the Routing Unit.
//
// Section 5.1: tokens "are batched together in groups of 20, the simulation
// uses an estimate of 19.5 useconds for each token added to a batch"
// (390 us / 20). Sweeping the batch size rescales the per-token Routing
// Unit cost (390/k us) and shows how much the process-oriented execution
// depends on cheap token injection.
#include "bench_common.hpp"
#include "workloads/simple.hpp"

using namespace pods;

int main() {
  bench::header("Ablation — Routing Unit token batching",
                "paper section 5.1: groups of 20 -> 19.5 us per token");
  const int n = bench::smallMode() ? 16 : 32;
  const int pes = 16;
  CompileResult cr = compile(workloads::simpleSource(n, 1));
  Compiled& c = bench::compileOrDie(cr, "SIMPLE");

  TextTable table({"batch", "us/token", "time (ms)", "vs batch 20"});
  double base = 0.0;
  std::vector<std::tuple<int, double, double>> rows;
  for (int batch : {1, 2, 5, 10, 20, 50}) {
    sim::MachineConfig mc;
    mc.numPEs = pes;
    mc.timing.tokenBatch = batch;
    PodsRun run = bench::runOrDie(c, mc, "SIMPLE");
    if (batch == 20) base = run.stats.total.ms();
    rows.emplace_back(batch, mc.timing.tokenRoute().us(),
                      run.stats.total.ms());
  }
  for (auto& [batch, perTok, ms] : rows) {
    table.row()
        .cell(std::int64_t{batch})
        .cell(perTok, 2)
        .cell(ms, 2)
        .cell(ms / base, 2);
  }
  table.print();
  std::printf("\n(%dx%d SIMPLE, %d PEs)\n\n", n, n, pes);
  return 0;
}
