// micro_serve: what does the warm daemon actually buy over one-shot podsc?
//
// Three quantities, all wall-clock on the host:
//
//  - cold: a full one-shot podsc process (fork + exec + parse + translate +
//    partition + thread spin-up + run) on SIMPLE 16x16 — the cost every
//    submission pays without a daemon;
//  - warm x1: a submit of the same program to an in-process daemon over a
//    real Unix socket, compiled-program cache hot — protocol + dispatch +
//    the run itself on the warm pool;
//  - warm x8: eight concurrent clients submitting the same program, to show
//    admission + the shared pool under contention.
//
// The PR's acceptance bar (EXPERIMENTS.md): warm-cache submit latency
// <= 25% of the cold one-shot wall time. PODS_BENCH_SMALL=1 shrinks rep
// counts, not the program — the bench_gate wall-time budget is the whole
// binary.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/serve.hpp"
#include "workloads/simple.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

/// Locates the podsc binary next to this one (build/bench/../podsc);
/// PODS_PODSC overrides.
std::string findPodsc(const char* argv0) {
  if (const char* env = std::getenv("PODS_PODSC")) return env;
  std::string self = argv0;
  const std::size_t slash = self.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/../podsc";
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  const bool small = std::getenv("PODS_BENCH_SMALL") != nullptr;
  const int coldReps = small ? 5 : 15;
  const int warmReps = small ? 20 : 100;
  const int concClients = 8;
  const int concRepsEach = small ? 4 : 20;

  const std::string src = pods::workloads::simpleSource(16, 1);

  // ---- cold: one-shot podsc process on the same program -----------------
  const std::string podsc = findPodsc(argv[0]);
  char tmpl[] = "/tmp/micro_serve_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string dir = tmpl;
  const std::string idl = dir + "/simple16.idl";
  {
    std::ofstream out(idl);
    out << src;
  }
  const std::string coldCmd =
      podsc + " --engine=native --pes 4 " + idl + " > /dev/null 2>&1";
  std::vector<double> coldMs;
  if (::access(podsc.c_str(), X_OK) == 0) {
    for (int i = 0; i < coldReps; ++i) {
      const auto t0 = Clock::now();
      if (std::system(coldCmd.c_str()) != 0) {
        std::fprintf(stderr, "micro_serve: cold podsc run failed: %s\n",
                     coldCmd.c_str());
        return 1;
      }
      coldMs.push_back(msSince(t0));
    }
  } else {
    std::fprintf(stderr,
                 "micro_serve: podsc not found at %s — skipping the cold "
                 "reference (set PODS_PODSC)\n",
                 podsc.c_str());
  }

  // ---- warm: in-process daemon over a real Unix socket ------------------
  pods::serve::ServeConfig cfg;
  cfg.pes = 4;
  cfg.maxInflight = concClients;  // x8 measures the pool, not the queue
  cfg.maxQueue = 2 * concClients;
  pods::serve::Endpoint ep;
  ep.unixPath = dir + "/podsd.sock";
  pods::serve::Daemon daemon(cfg, ep);
  std::string err;
  if (!daemon.start(&err)) {
    std::fprintf(stderr, "micro_serve: %s\n", err.c_str());
    return 1;
  }

  auto submitOnce = [&](pods::serve::Client& cli, std::string* why) {
    pods::serve::Client::Reply reply;
    for (;;) {
      if (!cli.submitSource(src, 0, &reply, why)) return -1.0;
      if (!reply.busy) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (reply.result.ok == 0) {
      *why = reply.result.error;
      return -1.0;
    }
    return reply.result.wallMs;
  };

  pods::serve::Client cli;
  pods::proto::ctl::WelcomeMsg welcome;
  if (!cli.connectUnix(ep.unixPath, &err) || !cli.handshake(&welcome, &err)) {
    std::fprintf(stderr, "micro_serve: %s\n", err.c_str());
    return 1;
  }
  // Prime the compiled-program cache AND the warm pool: the first few jobs
  // still pay allocator/page-fault warm-up, which is exactly the cost a
  // long-lived daemon amortizes away — don't let it into the median.
  for (int i = 0; i < 10; ++i) {
    if (submitOnce(cli, &err) < 0) {
      std::fprintf(stderr, "micro_serve: priming submit failed: %s\n",
                   err.c_str());
      return 1;
    }
  }
  std::vector<double> warm1Ms;  // client-observed round-trip, cache hot
  for (int i = 0; i < warmReps; ++i) {
    const auto t0 = Clock::now();
    if (submitOnce(cli, &err) < 0) {
      std::fprintf(stderr, "micro_serve: warm submit failed: %s\n",
                   err.c_str());
      return 1;
    }
    warm1Ms.push_back(msSince(t0));
  }

  // ---- warm x8: concurrent tenants on the shared pool -------------------
  std::vector<std::thread> threads;
  std::mutex m;
  std::vector<double> warm8Ms;
  std::vector<std::string> errors;
  const auto concStart = Clock::now();
  for (int c = 0; c < concClients; ++c) {
    threads.emplace_back([&] {
      pods::serve::Client tenant;
      std::string terr;
      pods::proto::ctl::WelcomeMsg w;
      if (!tenant.connectUnix(ep.unixPath, &terr) ||
          !tenant.handshake(&w, &terr)) {
        std::lock_guard<std::mutex> g(m);
        errors.push_back(terr);
        return;
      }
      for (int i = 0; i < concRepsEach; ++i) {
        const auto t0 = Clock::now();
        if (submitOnce(tenant, &terr) < 0) {
          std::lock_guard<std::mutex> g(m);
          errors.push_back(terr);
          return;
        }
        const double ms = msSince(t0);
        std::lock_guard<std::mutex> g(m);
        warm8Ms.push_back(ms);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double concWallMs = msSince(concStart);
  if (!errors.empty()) {
    std::fprintf(stderr, "micro_serve: concurrent submit failed: %s\n",
                 errors.front().c_str());
    return 1;
  }

  daemon.stop();
  ::unlink(idl.c_str());
  ::unlink(ep.unixPath.c_str());
  ::rmdir(dir.c_str());

  const double cold = median(coldMs);
  const double warm1 = median(warm1Ms);
  const double warm8 = median(warm8Ms);
  std::printf("micro_serve: SIMPLE 16x16, native pes=4 (%s reps)\n",
              small ? "small" : "full");
  if (!coldMs.empty())
    std::printf("  cold one-shot podsc      median %7.3f ms  (%d reps)\n",
                cold, coldReps);
  std::printf("  warm submit x1 (cache hot) median %7.3f ms  (%d reps)\n",
              warm1, warmReps);
  std::printf("  warm submit x8 concurrent  median %7.3f ms  (%d clients x "
              "%d; %.0f jobs/s aggregate)\n",
              warm8, concClients, concRepsEach,
              1e3 * concClients * concRepsEach / concWallMs);
  if (!coldMs.empty() && cold > 0)
    std::printf("  warm/cold ratio            %6.1f%%  (acceptance bar: "
                "<= 25%%)\n",
                100.0 * warm1 / cold);
  return 0;
}
