// Micro-benchmarks (google-benchmark) of the native array plane: the
// shared-heap LocalStore against the owner-serviced wire store on an
// array-heavy stencil whose halo reads cross page-ownership boundaries
// every row. The headline counter is us/remote — the end-to-end cost of
// one owner-serviced array access (request, service, value reply) — plus
// rec/dgram, how well array records share datagrams with ordinary tokens
// under UDP batching (the row-parallel read bursts and park-fill reply
// bursts are exactly the traffic the outbox coalescer exists for).
//
// The wire-store runs double as a self-gate: a fault-free run must finish
// with zero retransmits and must batch more than two records per datagram,
// or the binary exits nonzero (the bench gate's wall-time tolerance would
// shrug at a protocol regression; these invariants don't).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "core/pods.hpp"
#include "workloads/kernels.hpp"

namespace {

constexpr int kN = 24;     // stencil grid edge
constexpr int kSteps = 3;  // relaxation sweeps

const pods::Compiled& compiled() {
  static pods::CompileResult cr =
      pods::compile(pods::workloads::stencilSource(kN, kSteps));
  if (!cr.ok) {
    std::fprintf(stderr, "micro_arrays: compile failed:\n%s",
                 cr.diagnostics.c_str());
    std::exit(1);
  }
  return *cr.compiled;
}

pods::native::NativeConfig config(pods::native::StoreKind store,
                                  pods::native::TransportKind transport) {
  pods::native::NativeConfig nc;
  nc.numWorkers = 4;
  nc.pageElems = 8;  // small pages: maximize cross-PE ownership churn
  nc.store = store;
  nc.transport = transport;
  return nc;
}

pods::NativeRun runOrDie(const pods::native::NativeConfig& nc,
                         const char* what) {
  pods::NativeRun run = pods::runNative(compiled(), nc);
  if (!run.stats.ok) {
    std::fprintf(stderr, "micro_arrays: %s run failed: %s\n", what,
                 run.stats.error.c_str());
    std::exit(1);
  }
  return run;
}

// Remote accesses an iteration generates: split-phase reads + remote writes
// + shape queries. Under LocalStore these are shared-heap ops instead, so
// the same denominator is derived from the kernel, not the counters.
std::int64_t remoteOps(const pods::NativeRun& run) {
  const auto& c = run.stats.counters;
  return c.get("net.am.readReqSent") + c.get("net.am.writeSent") +
         c.get("net.am.dimReqSent");
}

void gateWireInvariants(const pods::NativeRun& run, bool udp) {
  const auto& c = run.stats.counters;
  if (c.get("net.retx.resent") != 0) {
    std::fprintf(stderr,
                 "micro_arrays: FAIL net.retx.resent=%lld on a fault-free "
                 "wire run (expected 0)\n",
                 static_cast<long long>(c.get("net.retx.resent")));
    std::exit(1);
  }
  if (!udp) return;
  const std::int64_t records = c.get("net.udp.batch.tokens");
  const std::int64_t dgrams = c.get("net.udp.batch.datagrams");
  if (dgrams <= 0 || records <= 2 * dgrams) {
    std::fprintf(stderr,
                 "micro_arrays: FAIL %lld records in %lld datagrams "
                 "(expected > 2 records/datagram)\n",
                 static_cast<long long>(records),
                 static_cast<long long>(dgrams));
    std::exit(1);
  }
}

void BM_Store(benchmark::State& state, pods::native::StoreKind store,
              pods::native::TransportKind transport, const char* what) {
  const auto nc = config(store, transport);
  const bool udp = transport == pods::native::TransportKind::Udp;
  const bool wire = store == pods::native::StoreKind::Wire;
  std::int64_t remotes = 0, records = 0, dgrams = 0;
  double wall = 0;
  for (auto _ : state) {
    pods::NativeRun run = runOrDie(nc, what);
    if (wire) {
      gateWireInvariants(run, udp);
      remotes += remoteOps(run);
    }
    records += run.stats.counters.get("net.udp.batch.tokens");
    dgrams += run.stats.counters.get("net.udp.batch.datagrams");
    wall += run.stats.wallSeconds;
    benchmark::DoNotOptimize(run);
  }
  if (wire && remotes > 0) {
    state.counters["us/remote"] =
        wall * 1e6 / static_cast<double>(remotes);
  }
  if (dgrams > 0) {
    state.counters["rec/dgram"] =
        static_cast<double>(records) / static_cast<double>(dgrams);
  }
}

void BM_LocalInbox(benchmark::State& s) {
  BM_Store(s, pods::native::StoreKind::Local,
           pods::native::TransportKind::Inbox, "local/inbox");
}
void BM_WireInbox(benchmark::State& s) {
  BM_Store(s, pods::native::StoreKind::Wire,
           pods::native::TransportKind::Inbox, "wire/inbox");
}
void BM_LocalUdp(benchmark::State& s) {
  BM_Store(s, pods::native::StoreKind::Local, pods::native::TransportKind::Udp,
           "local/udp");
}
void BM_WireUdp(benchmark::State& s) {
  BM_Store(s, pods::native::StoreKind::Wire, pods::native::TransportKind::Udp,
           "wire/udp");
}
// wire/inbox vs local/inbox isolates protocol overhead (park/fill, typed
// records) from socket cost; wire/udp is the deployment-shaped number.
// Iteration counts are pinned: each iteration is a whole engine run (ms,
// not ns), so adaptive timing would stretch the binary past what the
// whole-binary wall-clock gate wants, without adding precision.
BENCHMARK(BM_LocalInbox)->Iterations(100);
BENCHMARK(BM_WireInbox)->Iterations(100);
BENCHMARK(BM_LocalUdp)->Iterations(50);
BENCHMARK(BM_WireUdp)->Iterations(50);

}  // namespace

BENCHMARK_MAIN();
