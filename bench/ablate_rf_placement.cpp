// Ablation: Data-Distributed Execution (ownership Range Filters) versus
// plain block partitioning of iteration ranges.
//
// The core PODS idea (section 4) is that the Range Filter makes computation
// follow the data distribution: the iteration that writes an element runs
// on the PE that owns it, minimizing remote accesses. Forcing the fallback
// block partition keeps results identical but decouples iterations from
// ownership, so remote writes appear and times rise whenever the index
// space and the page layout disagree.
#include "bench_common.hpp"
#include "workloads/kernels.hpp"
#include "workloads/simple.hpp"

using namespace pods;

namespace {

void runCase(const std::string& name, const std::string& src, int pes) {
  CompileResult owned = compile(src);
  CompileResult block = compile(src, {.distribute = true, .forceBlockRange = true});
  Compiled& a = pods::bench::compileOrDie(owned, name);
  Compiled& b = pods::bench::compileOrDie(block, name);
  sim::MachineConfig mc;
  mc.numPEs = pes;
  PodsRun ra = pods::bench::runOrDie(a, mc, name);
  PodsRun rb = pods::bench::runOrDie(b, mc, name);
  std::string why;
  if (!sameOutputs(ra.out, rb.out, &why)) {
    std::fprintf(stderr, "%s: ablation changed results: %s\n", name.c_str(),
                 why.c_str());
    std::exit(1);
  }
  TextTable table({"range filter", "time (ms)", "remote writes",
                   "remote reads", "pages"});
  auto row = [&](const char* label, const PodsRun& r) {
    table.row()
        .cell(label)
        .cell(r.stats.total.ms(), 2)
        .cell(r.stats.counters.get("array.writes.remote"))
        .cell(r.stats.counters.get("array.reads.remote"))
        .cell(r.stats.counters.get("array.pagesSent"));
  };
  std::printf("-- %s (%d PEs) --\n", name.c_str(), pes);
  row("ownership (PODS)", ra);
  row("block range (ablated)", rb);
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::header("Ablation — ownership Range Filters vs block partitioning",
                "paper section 4.2: Data-Distributed Execution");
  const int n = bench::smallMode() ? 16 : 32;
  // An uneven matrix makes index-block vs page-segment mismatch visible.
  runCase("fill 48x20", workloads::fill2dSource(48, 20), 8);
  runCase("stencil " + std::to_string(n), workloads::stencilSource(n, 2), 8);
  runCase("SIMPLE " + std::to_string(n), workloads::simpleSource(n, 1), 16);
  return 0;
}
