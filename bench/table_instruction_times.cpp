// Section 5.1 tables: the simulator's timing model.
//
// Prints (a) the iPSC/2 Execution Unit instruction times, (b) the Array
// Manager task-time formulas, and (c) the Routing Unit / network constants,
// each next to the paper's published value. These are inputs to the
// simulation; the bench verifies the model reproduces the paper's numbers
// exactly and derives the composite costs the paper quotes (2.7 us local
// array read, 19.5 us per batched token).
#include "bench_common.hpp"
#include "sim/timing.hpp"

using namespace pods;

int main() {
  sim::Timing t;

  bench::header("Table (5.1) — iPSC/2 instruction execution times",
                "measured values the paper's simulator uses");
  {
    TextTable table({"instruction", "model (us)", "paper (us)"});
    auto row = [&](const char* name, SimTime v, const char* paper) {
      table.row().cell(name).cell(v.us(), 3).cell(paper);
    };
    row("integer add", t.intAdd, "0.300");
    row("integer subtraction", t.intSub, "0.300");
    row("bitwise logical", t.bitLogical, "0.558");
    row("floating point negate", t.fNeg, "0.555");
    row("floating point compare", t.fCmp, "5.803");
    row("floating point power", t.fPow, "96.418");
    row("floating point abs", t.fAbs, "12.626");
    row("floating point square root", t.fSqrt, "18.929");
    row("floating point multiply", t.fMul, "7.217");
    row("floating point division", t.fDiv, "10.707");
    row("floating point addition", t.fAdd, "6.753");
    row("floating point subtraction", t.fSub, "6.757");
    row("integer multiply (derived)", t.intMul, "-");
    row("integer divide (derived)", t.intDiv, "-");
    row("integer compare (derived)", t.intCmp, "-");
    table.print();
  }

  std::printf("\n");
  bench::header("Composite Execution Unit costs", "paper section 5.1");
  {
    TextTable table({"quantity", "model (us)", "paper (us)"});
    // "1 integer multiply + 1 integer add + 3 integer comparisons + 1 local
    //  read ... works out to be 2.7 useconds"
    SimTime localRead = t.intMul + t.intAdd + t.intCmp * 3 + t.memRead;
    table.row().cell("local array read (derived)").cell(localRead.us(), 3)
        .cell("2.700");
    table.row().cell("local array read (charged)").cell(t.localArrayRead.us(), 3)
        .cell("2.700");
    table.row().cell("fast context switch").cell(t.contextSwitch.us(), 3)
        .cell("1.312");
    table.print();
  }

  std::printf("\n");
  bench::header("Table (5.1) — Array Manager task times", "paper section 5.1");
  {
    TextTable table({"task", "model", "paper"});
    auto us = [](SimTime v) { return fmtF(v.us(), 1) + " us"; };
    table.row().cell("memory read").cell(us(t.memRead)).cell("0.3 us");
    table.row().cell("memory write").cell(us(t.memWrite)).cell("0.4 us");
    table.row().cell("unit-to-unit signal").cell(us(t.unitSignal)).cell("1.0 us");
    table.row().cell("enqueue early read").cell(us(t.enqueueRead)).cell("2.9 us");
    table.row().cell("allocate array").cell(us(t.allocArray)).cell("100.0 us");
    table.row()
        .cell("receive page (32 elems)")
        .cell(us(t.memWrite * t.pageElems))
        .cell("page_size * write");
    table.row()
        .cell("send page (32 elems)")
        .cell(us(t.memRead * t.pageElems + t.unitSignal))
        .cell("page_size * read + msg");
    table.print();
  }

  std::printf("\n");
  bench::header("Routing Unit / network (Dunigan model)", "paper section 5.1");
  {
    TextTable table({"quantity", "model", "paper"});
    table.row()
        .cell("message <= 100 bytes")
        .cell(fmtF(t.smallMessage.us(), 1) + " us")
        .cell("390 us");
    table.row()
        .cell("token batch size")
        .cell(std::int64_t{t.tokenBatch})
        .cell("20");
    table.row()
        .cell("per batched token")
        .cell(fmtF(t.tokenRoute().us(), 1) + " us")
        .cell("19.5 us");
    table.row()
        .cell("page message (697+0.4L)")
        .cell(fmtF(t.pageMessage().us(), 1) + " us")
        .cell("697 + 0.4*len us");
    table.row()
        .cell("network traversal")
        .cell(fmtF(t.networkHop.us(), 1) + " us")
        .cell("2.5 us (2.5 hops)");
    table.row()
        .cell("matching unit lookup")
        .cell(fmtF(t.matchTime.us(), 1) + " us")
        .cell("15 us");
    table.row()
        .cell("frame list operation")
        .cell(fmtF(t.frameListOp.us(), 1) + " us")
        .cell("0.9 us");
    table.print();
  }
  std::printf("\n");
  return 0;
}
