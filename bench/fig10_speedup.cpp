// Figure 10: Speed-up of SIMPLE.
//
// Reproduces the paper's headline result: speed-up (single-PE time divided
// by multi-PE time) of the SIMPLE benchmark for 16x16, 32x32, and 64x64
// meshes on 1..32 PEs, with the Pingali & Rogers-style static-compilation
// baseline plotted for the 64x64 case ("P&R").
//
// Paper values for comparison: 16x16 tops out at 8.1; 32x32 at 12.4
// ("more than an order of magnitude"); 64x64 reaches 18.9 on 32 PEs and
// PODS outperforms the pure compilation approach at that size.
#include "bench_common.hpp"
#include "workloads/simple.hpp"

using namespace pods;

int main() {
  bench::header("Figure 10 — Speed-up of SIMPLE",
                "paper section 5.3.3; speedup = T(1 PE) / T(N PEs)");
  const int steps = 1;

  struct Series {
    int size;
    std::vector<double> podsTime;    // ms per PE count
    std::vector<double> staticTime;  // ms per PE count
  };
  std::vector<Series> series;

  for (int n : bench::problemSizes()) {
    CompileResult cr = compile(workloads::simpleSource(n, steps));
    Compiled& c = bench::compileOrDie(cr, "SIMPLE " + std::to_string(n));
    Series s;
    s.size = n;
    BaselineRun seq = runSequentialBaseline(c);
    for (int pes : bench::peCounts()) {
      sim::MachineConfig mc;
      mc.numPEs = pes;
      PodsRun run = bench::runOrDie(c, mc, "SIMPLE " + std::to_string(n));
      std::string why;
      if (!sameOutputs(run.out, seq.out, &why)) {
        std::fprintf(stderr, "WRONG RESULT at %dx%d PEs=%d: %s\n", n, n, pes,
                     why.c_str());
        return 1;
      }
      s.podsTime.push_back(run.stats.total.ms());
      BaselineRun st = runStaticBaseline(c, pes);
      s.staticTime.push_back(st.stats.total.ms());
    }
    series.push_back(std::move(s));
  }

  // Speed-up table (the paper's figure as rows per PE count).
  std::vector<std::string> cols = {"PEs", "linear"};
  for (const Series& s : series) {
    cols.push_back(std::to_string(s.size) + "x" + std::to_string(s.size));
  }
  cols.push_back("P&R " + std::to_string(series.back().size) + "x" +
                 std::to_string(series.back().size));
  TextTable table(cols);
  const auto pes = bench::peCounts();
  for (std::size_t i = 0; i < pes.size(); ++i) {
    table.row().cell(std::int64_t{pes[i]}).cell(double(pes[i]), 1);
    for (const Series& s : series) {
      table.cell(s.podsTime[0] / s.podsTime[i], 2);
    }
    const Series& big = series.back();
    table.cell(big.staticTime[0] / big.staticTime[i], 2);
  }
  table.print();

  std::printf("\nAbsolute times (ms, %d time step%s):\n", steps,
              steps == 1 ? "" : "s");
  std::vector<std::string> cols2 = {"PEs"};
  for (const Series& s : series) {
    cols2.push_back("PODS " + std::to_string(s.size));
    cols2.push_back("P&R " + std::to_string(s.size));
  }
  TextTable t2(cols2);
  for (std::size_t i = 0; i < pes.size(); ++i) {
    t2.row().cell(std::int64_t{pes[i]});
    for (const Series& s : series) {
      t2.cell(s.podsTime[i], 2);
      t2.cell(s.staticTime[i], 2);
    }
  }
  t2.print();

  std::printf(
      "\nPaper reference points: 16x16 tops out ~8.1; 32x32 ~12.4; 64x64 "
      "reaches 18.9 on 32 PEs,\nwith PODS above the P&R compilation "
      "approach at 64x64.\n\n");
  return 0;
}
