// Section 5.3.4: efficiency comparison against a sequential version.
//
// The paper compiled a sequential C version of SIMPLE's conduction with the
// Intel compiler: a 32x32 input conduction takes 0.9 s on one iPSC/2 node,
// versus 1.72 s estimated for PODS running on a single PE — "approximately
// twice the time", i.e. PODS running sequentially is not grossly
// inefficient, which validates the speed-up base line.
//
// Here: the sequential cost model (conventional compiled code: address
// arithmetic without presence checks, no tokens/matching/process overheads)
// versus the full PODS machine at 1 PE, on conduction 32x32 and on full
// SIMPLE.
#include "bench_common.hpp"
#include "workloads/simple.hpp"

using namespace pods;

namespace {

void compareOne(const std::string& name, const std::string& src) {
  CompileResult cr = compile(src);
  Compiled& c = pods::bench::compileOrDie(cr, name);
  BaselineRun seq = runSequentialBaseline(c);
  if (!seq.stats.ok) {
    std::fprintf(stderr, "sequential %s failed: %s\n", name.c_str(),
                 seq.stats.error.c_str());
    std::exit(1);
  }
  sim::MachineConfig mc;
  mc.numPEs = 1;
  PodsRun pods = pods::bench::runOrDie(c, mc, name);
  std::string why;
  if (!sameOutputs(pods.out, seq.out, &why)) {
    std::fprintf(stderr, "%s: models disagree: %s\n", name.c_str(), why.c_str());
    std::exit(1);
  }
  double ratio = static_cast<double>(pods.stats.total.ns) /
                 static_cast<double>(seq.stats.total.ns);
  TextTable t({"configuration", "time (s)", "ratio"});
  t.row().cell("sequential model (\"C version\")").cell(seq.stats.total.sec(), 4)
      .cell(1.0, 2);
  t.row().cell("PODS, 1 PE").cell(pods.stats.total.sec(), 4).cell(ratio, 2);
  std::printf("-- %s --\n", name.c_str());
  t.print();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::header("Section 5.3.4 — efficiency vs the sequential version",
                "paper: conduction 32x32: C 0.9 s vs PODS 1 PE 1.72 s (1.9x)");
  compareOne("conduction 32x32", workloads::conductionOnlySource(32, 1));
  compareOne("SIMPLE 32x32", workloads::simpleSource(32, 1));
  std::printf(
      "The ratio stays well under the paper's 'grossly inefficient'\n"
      "threshold; our sequential model shares the measured iPSC/2 floating-\n"
      "point costs with the PODS Execution Unit, which dominate both sides,\n"
      "so the overhead ratio lands below the paper's 1.9x (see\n"
      "EXPERIMENTS.md for the accounting).\n\n");
  return 0;
}
