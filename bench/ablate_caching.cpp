// Ablation: remote-page software caching.
//
// Section 4: "due to locality of reference, this reduces the need for
// future remote requests to elements on the same page", and single
// assignment means cached pages never need coherence traffic. Compare
// caching on/off on SIMPLE and the stencil kernel.
#include "bench_common.hpp"
#include "workloads/kernels.hpp"
#include "workloads/simple.hpp"

using namespace pods;

namespace {

void runCase(const std::string& name, const std::string& src, int pes) {
  CompileResult cr = compile(src);
  Compiled& c = pods::bench::compileOrDie(cr, name);
  TextTable table({"caching", "time (ms)", "pages", "remote reads",
                   "cache hits"});
  double onMs = 0.0;
  for (bool cache : {true, false}) {
    sim::MachineConfig mc;
    mc.numPEs = pes;
    mc.cachePages = cache;
    PodsRun run = pods::bench::runOrDie(c, mc, name);
    if (cache) onMs = run.stats.total.ms();
    table.row()
        .cell(cache ? "on" : "off")
        .cell(run.stats.total.ms(), 2)
        .cell(run.stats.counters.get("array.pagesSent"))
        .cell(run.stats.counters.get("array.reads.remote"))
        .cell(run.stats.counters.get("array.reads.cacheHit"));
    if (!cache) {
      std::printf("-- %s (%d PEs): caching saves %.1f%% --\n", name.c_str(),
                  pes, 100.0 * (1.0 - onMs / run.stats.total.ms()));
    }
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::header("Ablation — remote-page software cache", "paper section 4");
  const int n = bench::smallMode() ? 16 : 32;
  runCase("SIMPLE " + std::to_string(n), workloads::simpleSource(n, 1), 16);
  runCase("stencil 32, 4 steps", workloads::stencilSource(32, 4), 16);
  return 0;
}
