// Micro-benchmarks (google-benchmark) of the engine itself: compiler
// pipeline throughput, simulator event rate, and the hot layout/ordering
// primitives. These measure the *host-side* cost of the reproduction, not
// simulated time.
#include <benchmark/benchmark.h>

#include "core/pods.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "runtime/array_layout.hpp"
#include "translate/translator.hpp"
#include "workloads/kernels.hpp"
#include "workloads/simple.hpp"

namespace {

const std::string& simpleSrc() {
  static const std::string src = pods::workloads::simpleSource(16, 1);
  return src;
}

void BM_Lexer(benchmark::State& state) {
  for (auto _ : state) {
    pods::DiagSink d;
    auto toks = pods::fe::lex(simpleSrc(), d);
    benchmark::DoNotOptimize(toks);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(simpleSrc().size()));
}
BENCHMARK(BM_Lexer);

void BM_Parser(benchmark::State& state) {
  for (auto _ : state) {
    pods::DiagSink d;
    auto mod = pods::fe::parse(simpleSrc(), d);
    benchmark::DoNotOptimize(mod);
  }
}
BENCHMARK(BM_Parser);

void BM_FullCompile(benchmark::State& state) {
  for (auto _ : state) {
    auto cr = pods::compile(simpleSrc());
    benchmark::DoNotOptimize(cr);
  }
}
BENCHMARK(BM_FullCompile);

void BM_SimulateFill2d(benchmark::State& state) {
  auto cr = pods::compile(pods::workloads::fill2dSource(32, 32));
  std::int64_t events = 0;
  for (auto _ : state) {
    pods::sim::MachineConfig mc;
    mc.numPEs = static_cast<int>(state.range(0));
    pods::PodsRun run = pods::runPods(*cr.compiled, mc);
    events += run.stats.counters.get("events");
    benchmark::DoNotOptimize(run);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateFill2d)->Arg(1)->Arg(8);

void BM_SequentialEval(benchmark::State& state) {
  auto cr = pods::compile(pods::workloads::matmulSource(16));
  for (auto _ : state) {
    auto run = pods::runSequentialBaseline(*cr.compiled);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_SequentialEval);

void BM_LayoutOwnership(benchmark::State& state) {
  pods::ArrayLayout l({2, 64, 64}, 32, 32);
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l.ownerOfOffset(i % 4096));
    benchmark::DoNotOptimize(l.ownedRows(static_cast<int>(i % 32)));
    ++i;
  }
}
BENCHMARK(BM_LayoutOwnership);

void BM_OrderItems(benchmark::State& state) {
  // A realistic block: SIMPLE's hydrodynamics body.
  auto cr = pods::compile(simpleSrc());
  const pods::ir::Block* body = nullptr;
  for (const auto& fn : cr.compiled->graph.fns) {
    if (fn.name != "hydrodynamics") continue;
    pods::ir::forEachItem(fn.body, [&](const pods::ir::Item& it) {
      if (it.kind == pods::ir::ItemKind::Loop && !body) {
        const pods::ir::Block& loop = *it.loop;
        for (const pods::ir::Item& inner : loop.body) {
          if (inner.kind == pods::ir::ItemKind::Loop) body = inner.loop.get();
        }
      }
    });
  }
  for (auto _ : state) {
    auto order = pods::translate::orderItems(body->body);
    benchmark::DoNotOptimize(order);
  }
}
BENCHMARK(BM_OrderItems);

}  // namespace

BENCHMARK_MAIN();
