// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures.
//
// Environment: set PODS_BENCH_SMALL=1 to trim problem sizes (quick CI runs).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/pods.hpp"
#include "support/table.hpp"

namespace pods::bench {

inline bool smallMode() {
  const char* v = std::getenv("PODS_BENCH_SMALL");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// The paper's PE counts (x axis of Figures 8-10), extended to 64 to probe
/// past the paper's 32-PE right edge. Small mode keeps the quick-CI subset.
inline std::vector<int> peCounts() {
  if (smallMode()) return {1, 2, 4, 8, 16, 32};
  return {1, 2, 4, 8, 16, 32, 64};
}

/// The paper's SIMPLE problem sizes; trimmed in small mode.
inline std::vector<int> problemSizes() {
  if (smallMode()) return {16, 32};
  return {16, 32, 64};
}

inline Compiled& compileOrDie(CompileResult& cr, const std::string& what) {
  if (!cr.ok) {
    std::fprintf(stderr, "compile of %s failed:\n%s", what.c_str(),
                 cr.diagnostics.c_str());
    std::exit(1);
  }
  return *cr.compiled;
}

inline PodsRun runOrDie(const Compiled& c, const sim::MachineConfig& mc,
                        const std::string& what) {
  PodsRun run = runPods(c, mc);
  if (!run.stats.ok) {
    std::fprintf(stderr, "run of %s (PEs=%d) failed: %s\n", what.c_str(),
                 mc.numPEs, run.stats.error.c_str());
    std::exit(1);
  }
  return run;
}

inline void header(const char* title, const char* paperRef) {
  std::printf("=============================================================\n");
  std::printf("%s\n(%s)\n", title, paperRef);
  std::printf("=============================================================\n");
}

}  // namespace pods::bench
