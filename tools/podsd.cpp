// podsd — the PODS serving daemon.
//
// A long-lived server keeping one warm native worker pool and a
// compiled-program cache; clients submit IdLite programs (or cached
// compiled handles) over a Unix/TCP socket speaking the ctl-frame protocol
// and get results + per-job counters back. See docs/ARCHITECTURE.md,
// "Serving daemon".
//
// Usage:
//   podsd (--socket=PATH | --tcp=PORT) [options]
//
// Options:
//   --socket=PATH      listen on a Unix-domain socket at PATH
//   --tcp=PORT         listen on 127.0.0.1:PORT (0 = ephemeral, printed)
//   --pes N            worker count of every job's machine   (default: 4)
//   --page N           array page size in elements           (default: 32)
//   --max-inflight N   concurrently executing jobs           (default: 2)
//   --max-queue N      admitted-but-waiting jobs             (default: 8)
//   --cache-cap N      compiled programs kept warm           (default: 64)
//   --stats            print the counter registry at shutdown
//   --stats-json=FILE  write the counter registry as JSON at shutdown
//
// SIGINT/SIGTERM: stop accepting, finish every admitted job, write stats,
// exit 0.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include <atomic>
#include <chrono>
#include <thread>

#include "serve/daemon.hpp"
#include "support/stats.hpp"

namespace {

std::atomic<bool> gStop{false};

void onSignal(int) { gStop.store(true); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket=PATH | --tcp=PORT) [--pes N] [--page N] "
               "[--max-inflight N] [--max-queue N] [--cache-cap N] "
               "[--stats] [--stats-json=FILE]\n",
               argv0);
  return 2;
}

bool intAfter(const std::string& a, const char* prefix, int min, int& out) {
  const std::string v = a.substr(std::strlen(prefix));
  char* end = nullptr;
  const long x = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || x < min) return false;
  out = static_cast<int>(x);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pods::serve::ServeConfig cfg;
  pods::serve::Endpoint ep;
  bool printStats = false;
  std::string statsJson;
  int tcpPort = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--socket=", 0) == 0) {
      ep.unixPath = a.substr(9);
    } else if (a.rfind("--tcp=", 0) == 0) {
      if (!intAfter(a, "--tcp=", 0, tcpPort) || tcpPort > 65535)
        return usage(argv[0]);
      ep.tcp = true;
      ep.tcpPort = static_cast<std::uint16_t>(tcpPort);
    } else if (a.rfind("--pes=", 0) == 0) {
      if (!intAfter(a, "--pes=", 1, cfg.pes)) return usage(argv[0]);
    } else if (a == "--pes" && i + 1 < argc) {
      if (!intAfter(std::string("=") + argv[++i], "=", 1, cfg.pes))
        return usage(argv[0]);
    } else if (a.rfind("--page=", 0) == 0) {
      if (!intAfter(a, "--page=", 1, cfg.pageElems)) return usage(argv[0]);
    } else if (a.rfind("--max-inflight=", 0) == 0) {
      if (!intAfter(a, "--max-inflight=", 1, cfg.maxInflight))
        return usage(argv[0]);
    } else if (a.rfind("--max-queue=", 0) == 0) {
      if (!intAfter(a, "--max-queue=", 0, cfg.maxQueue)) return usage(argv[0]);
    } else if (a.rfind("--cache-cap=", 0) == 0) {
      if (!intAfter(a, "--cache-cap=", 1, cfg.cacheCapacity))
        return usage(argv[0]);
    } else if (a == "--stats") {
      printStats = true;
    } else if (a.rfind("--stats-json=", 0) == 0) {
      statsJson = a.substr(13);
    } else {
      return usage(argv[0]);
    }
  }
  if (ep.unixPath.empty() && !ep.tcp) return usage(argv[0]);

  pods::serve::Daemon daemon(cfg, ep);
  std::string err;
  if (!daemon.start(&err)) {
    std::fprintf(stderr, "podsd: %s\n", err.c_str());
    return 1;
  }
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  if (!ep.unixPath.empty()) {
    std::printf("podsd: serving on unix:%s pes=%d page=%d inflight=%d "
                "queue=%d cache=%d\n",
                ep.unixPath.c_str(), cfg.pes, cfg.pageElems, cfg.maxInflight,
                cfg.maxQueue, cfg.cacheCapacity);
  } else {
    std::printf("podsd: serving on tcp:127.0.0.1:%u pes=%d page=%d "
                "inflight=%d queue=%d cache=%d\n",
                daemon.boundPort(), cfg.pes, cfg.pageElems, cfg.maxInflight,
                cfg.maxQueue, cfg.cacheCapacity);
  }
  std::fflush(stdout);

  while (!gStop.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  daemon.stop();
  const pods::Counters st = daemon.stats();
  if (printStats) {
    for (const auto& [k, v] : st.all())
      std::printf("  %-28s %lld\n", k.c_str(), static_cast<long long>(v));
  }
  if (!statsJson.empty() &&
      !pods::writeStatsJson(statsJson, "serve", cfg.pes, 0.0, st)) {
    std::fprintf(stderr, "podsd: cannot write '%s'\n", statsJson.c_str());
    return 1;
  }
  std::printf("podsd: clean shutdown (%lld jobs ok, %lld busy rejects, "
              "%lld bad frames)\n",
              static_cast<long long>(st.get("serve.jobs.ok")),
              static_cast<long long>(st.get("serve.busyRejects")),
              static_cast<long long>(st.get("net.ctl.badFrames")));
  return 0;
}
