// podsc — the PODS compiler/runner command-line tool.
//
// Compiles an IdLite source file through the full pipeline and runs it on
// the selected engine, with dumps of every intermediate representation.
//
// Usage:
//   podsc [options] <file.idl>
//
// Options:
//   --engine=pods|seq|static|native   execution engine (default: pods)
//   --pes N            PE / worker count                 (default: 4)
//   --pe-weights=W0,W1,...  skew distributed-array ownership: PE i's page
//                      share is proportional to Wi (one integer >= 1 per
//                      PE; pods/native engines). Default: uniform.
//   --no-distribute    compile without the Partitioner
//   --block-range      ablation: block-partition Range Filters
//   --page N           array page size in elements       (default: 32)
//   --no-cache         disable remote-page caching (pods engine)
//   --eventq=calendar|heap  pods engine event queue: the calendar queue
//                      (default) or the reference binary heap (A/B runs;
//                      outputs and counters are bit-identical)
//   --trace=FILE       write a Chrome-trace timeline (pods engine)
//   --transport=inbox|udp|udp-multiproc  native engine: cross-PE token
//                      transport — the in-process inbox (default), per-PE
//                      UDP loopback sockets with ack/retransmit reliable
//                      delivery, or PEs as real supervised OS processes on
//                      the same UDP wire (kill -9 a worker: the supervisor
//                      respawns it and replays its log; output is
//                      bit-identical to a fault-free run)
//   --store=local|wire native engine: array-store backend — the shared
//                      heap/shm fast path (default) or owner-serviced array
//                      messages on the token wire (every non-local array
//                      access is a transported, fault-injectable, logged
//                      message; outputs are bit-identical to local)
//   --faults=SPEC      inject message faults (pods/native engines):
//                      comma-separated key:prob with keys drop, dup, delay,
//                      stall — e.g. --faults=drop:0.01,dup:0.005,delay:0.02
//   --fault-seed N     fault schedule seed                (default: 1)
//   --timeout SEC      wall-clock watchdog: abort a stuck run, dump stats,
//                      exit 124
//   --verify           cross-check results against the sequential engine
//   --stats            print machine statistics
//   --stats-json=FILE  write the run's counter registry as JSON
//                      (pods/native engines)
//   --dump-graph       print the dataflow-graph block tree
//   --dump-plan        print the Partitioner's decisions
//   --dump-sps         print the translated SP disassembly
//   --dump-dot         print graphviz of main's dataflow graph
#include <atomic>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "core/pods.hpp"
#include "ir/dot.hpp"
#include "native/procmgr.hpp"
#include "support/fault.hpp"
#include "support/table.hpp"

namespace {

struct Options {
  std::string engine = "pods";
  int pes = 4;
  std::vector<std::int64_t> peWeights;
  bool distribute = true;
  bool blockRange = false;
  int page = 32;
  bool cache = true;
  pods::sim::EventEngine eventq = pods::sim::EventEngine::Calendar;
  pods::native::TransportKind transport = pods::native::TransportKind::Inbox;
  bool transportSet = false;
  pods::native::StoreKind store = pods::native::StoreKind::Local;
  bool storeSet = false;
  bool verify = false;
  bool stats = false;
  bool dumpGraph = false;
  bool dumpPlan = false;
  bool dumpSps = false;
  bool dumpDot = false;
  std::string trace;
  std::string statsJson;
  pods::FaultConfig faults;
  int timeoutSec = 0;  // 0 = no watchdog
  std::string file;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--engine=pods|seq|static|native] [--pes N] "
               "[--pe-weights=W0,W1,...] "
               "[--no-distribute] [--block-range] [--page N] [--no-cache] "
               "[--eventq=calendar|heap] "
               "[--transport=inbox|udp|udp-multiproc] [--store=local|wire] "
               "[--trace=FILE] [--faults=SPEC] [--fault-seed N] "
               "[--timeout SEC] "
               "[--verify] [--stats] [--stats-json=FILE] [--dump-graph] "
               "[--dump-plan] [--dump-sps] [--dump-dot] <file.idl>\n",
               argv0);
  return 2;
}

/// Wall-clock watchdog (podsc --timeout): after `seconds`, raises the
/// engines' cooperative abort flag; if the run still hasn't unwound after a
/// grace period (an engine stuck inside one step, or the seq/static
/// evaluators which have no abort hook), hard-exits with status 124.
class Watchdog {
 public:
  std::atomic<bool> abortFlag{false};

  void arm(int seconds) {
    if (seconds <= 0) return;
    thread_ = std::thread([this, seconds] {
      std::unique_lock<std::mutex> g(m_);
      if (cv_.wait_for(g, std::chrono::seconds(seconds),
                       [&] { return done_; })) {
        return;  // run finished in time
      }
      std::fprintf(stderr,
                   "podsc: watchdog: run exceeded %d s, requesting abort\n",
                   seconds);
      abortFlag.store(true);
      if (!cv_.wait_for(g, std::chrono::seconds(5), [&] { return done_; })) {
        std::fprintf(stderr,
                     "podsc: watchdog: abort not honored after 5 s grace, "
                     "hard exit\n");
        std::_Exit(124);
      }
    });
  }

  /// Marks the run finished and joins; call before process exit.
  void disarm() {
    {
      std::lock_guard<std::mutex> g(m_);
      done_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  bool fired() const { return abortFlag.load(); }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

bool parseArgs(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    // std::atoi would accept trailing junk ("8x" -> 8) and return 0 for
    // unparseable input, indistinguishable from an explicit 0. from_chars
    // rejects both, and naming the flag beats the bare usage line.
    auto intArg = [&](const char* flag, int min, int& out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "podsc: %s requires an integer argument\n", flag);
        return false;
      }
      const char* s = argv[++i];
      int v = 0;
      auto [end, ec] = std::from_chars(s, s + std::strlen(s), v);
      if (ec != std::errc{} || *end != '\0') {
        std::fprintf(stderr, "podsc: %s: '%s' is not an integer\n", flag, s);
        return false;
      }
      if (v < min) {
        std::fprintf(stderr, "podsc: %s must be >= %d (got %d)\n", flag, min,
                     v);
        return false;
      }
      out = v;
      return true;
    };
    if (a.rfind("--engine=", 0) == 0) {
      o.engine = a.substr(9);
      if (o.engine != "pods" && o.engine != "seq" && o.engine != "static" &&
          o.engine != "native") {
        return false;
      }
    } else if (a == "--pes") {
      if (!intArg("--pes", 1, o.pes)) return false;
    } else if (a.rfind("--pe-weights=", 0) == 0) {
      o.peWeights.clear();
      const std::string spec = a.substr(13);
      std::size_t pos = 0;
      while (pos <= spec.size()) {
        const std::size_t comma = std::min(spec.find(',', pos), spec.size());
        const char* s = spec.data() + pos;
        const char* e = spec.data() + comma;
        long long w = 0;
        auto [end, ec] = std::from_chars(s, e, w);
        if (ec != std::errc{} || end != e || w < 1) {
          std::fprintf(stderr,
                       "podsc: --pe-weights wants comma-separated integers "
                       ">= 1 (got '%s')\n",
                       spec.c_str());
          return false;
        }
        o.peWeights.push_back(w);
        pos = comma + 1;
      }
    } else if (a == "--page") {
      if (!intArg("--page", 1, o.page)) return false;
    } else if (a == "--no-distribute") {
      o.distribute = false;
    } else if (a == "--block-range") {
      o.blockRange = true;
    } else if (a == "--no-cache") {
      o.cache = false;
    } else if (a.rfind("--eventq=", 0) == 0) {
      const std::string kind = a.substr(9);
      if (kind == "calendar") {
        o.eventq = pods::sim::EventEngine::Calendar;
      } else if (kind == "heap") {
        o.eventq = pods::sim::EventEngine::BinaryHeap;
      } else {
        std::fprintf(stderr,
                     "podsc: --eventq must be 'calendar' or 'heap' "
                     "(got '%s')\n",
                     kind.c_str());
        return false;
      }
    } else if (a.rfind("--transport=", 0) == 0) {
      if (!pods::native::parseTransportKind(a.substr(12), o.transport)) {
        std::fprintf(stderr,
                     "podsc: --transport must be 'inbox', 'udp', or "
                     "'udp-multiproc' (got '%s')\n",
                     a.substr(12).c_str());
        return false;
      }
      o.transportSet = true;
    } else if (a.rfind("--store=", 0) == 0) {
      if (!pods::native::parseStoreKind(a.substr(8), o.store)) {
        std::fprintf(stderr,
                     "podsc: --store must be 'local' or 'wire' (got '%s')\n",
                     a.substr(8).c_str());
        return false;
      }
      o.storeSet = true;
    } else if (a.rfind("--trace=", 0) == 0) {
      o.trace = a.substr(8);
    } else if (a.rfind("--stats-json=", 0) == 0) {
      o.statsJson = a.substr(13);
    } else if (a.rfind("--faults=", 0) == 0) {
      std::string err;
      if (!pods::FaultConfig::parse(a.substr(9), o.faults, &err)) {
        std::fprintf(stderr, "podsc: %s\n", err.c_str());
        return false;
      }
    } else if (a == "--fault-seed") {
      int seed = 0;
      if (!intArg("--fault-seed", 0, seed)) return false;
      o.faults.seed = static_cast<std::uint64_t>(seed);
    } else if (a == "--timeout") {
      if (!intArg("--timeout", 0, o.timeoutSec)) return false;
    } else if (a == "--verify") {
      o.verify = true;
    } else if (a == "--stats") {
      o.stats = true;
    } else if (a == "--dump-graph") {
      o.dumpGraph = true;
    } else if (a == "--dump-plan") {
      o.dumpPlan = true;
    } else if (a == "--dump-sps") {
      o.dumpSps = true;
    } else if (a == "--dump-dot") {
      o.dumpDot = true;
    } else if (!a.empty() && a[0] == '-') {
      return false;
    } else if (o.file.empty()) {
      o.file = a;
    } else {
      return false;
    }
  }
  return !o.file.empty();
}

void printOutputs(const pods::ProgramOutputs& out) {
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    const pods::Value& v = out.results[i];
    if (!v.isArray()) {
      std::printf("result %zu: %s\n", i, v.str().c_str());
      continue;
    }
    if (!out.arrays[i]) {
      std::printf("result %zu: <unknown array>\n", i);
      continue;
    }
    const auto& a = *out.arrays[i];
    double sum = 0.0;
    std::int64_t present = 0;
    for (const pods::Value& e : a.elems) {
      if (!e.empty()) {
        sum += e.asReal();
        ++present;
      }
    }
    if (a.shape.rank == 2) {
      std::printf("result %zu: matrix(%lld, %lld)", i,
                  static_cast<long long>(a.shape.dim0),
                  static_cast<long long>(a.shape.dim1));
    } else {
      std::printf("result %zu: array(%lld)", i,
                  static_cast<long long>(a.shape.dim0));
    }
    std::printf(" written=%lld/%zu sum=%.6g first=[",
                static_cast<long long>(present), a.elems.size(), sum);
    for (std::size_t e = 0; e < a.elems.size() && e < 5; ++e) {
      std::printf("%s%s", e ? ", " : "", a.elems[e].str().c_str());
    }
    std::printf("%s]\n", a.elems.size() > 5 ? ", ..." : "");
  }
}

void dumpCounters(const pods::Counters& counters) {
  for (const auto& [k, v] : counters.all()) {
    std::fprintf(stderr, "  %-28s %lld\n", k.c_str(),
                 static_cast<long long>(v));
  }
}

/// Shared --stats-json writer (support/stats.cpp) plus the tool's error
/// message on failure.
bool writeStatsOrWarn(const std::string& path, const std::string& engine,
                    int pes, double timeMs, const pods::Counters& counters,
                    double wallSeconds = 0.0, std::uint64_t events = 0) {
  if (pods::writeStatsJson(path, engine, pes, timeMs, counters, wallSeconds,
                           events)) {
    return true;
  }
  std::fprintf(stderr, "podsc: cannot write '%s'\n", path.c_str());
  return false;
}

int runTool(const Options& o, Watchdog& dog) {
  std::ifstream in(o.file);
  if (!in) {
    std::fprintf(stderr, "podsc: cannot open '%s'\n", o.file.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  pods::CompileOptions copts;
  copts.distribute = o.distribute;
  copts.forceBlockRange = o.blockRange;
  pods::CompileResult cr = pods::compile(buf.str(), copts);
  if (!cr.ok) {
    std::fprintf(stderr, "%s", cr.diagnostics.c_str());
    return 1;
  }
  const pods::Compiled& c = *cr.compiled;
  std::printf("compiled %s: %zu SPs, %zu instructions\n", o.file.c_str(),
              c.program.sps.size(), c.program.totalInstrs());

  if (o.dumpGraph) {
    for (const auto& fn : c.graph.fns) {
      std::printf("%s", pods::ir::dumpFunction(fn).c_str());
    }
  }
  if (o.dumpPlan) std::printf("%s", c.plan.describe(c.graph).c_str());
  if (o.dumpSps) std::printf("%s", c.program.disasm().c_str());
  if (o.dumpDot) std::printf("%s", pods::ir::toDot(c.graph.main()).c_str());

  pods::ProgramOutputs out;
  if (o.engine == "pods") {
    pods::sim::MachineConfig mc;
    mc.numPEs = o.pes;
    mc.peWeights = o.peWeights;
    mc.cachePages = o.cache;
    mc.eventEngine = o.eventq;
    mc.timing.pageElems = o.page;
    mc.tracePath = o.trace;
    mc.faults = o.faults;
    mc.abort = &dog.abortFlag;
    pods::PodsRun run = pods::runPods(c, mc);
    if (!run.stats.ok) {
      std::fprintf(stderr, "podsc: run failed: %s\n", run.stats.error.c_str());
      if (dog.fired()) {
        std::fprintf(stderr, "counter snapshot at abort:\n");
        dumpCounters(run.stats.counters);
      }
      return 1;
    }
    std::printf("engine=pods pes=%d simulated time: %.3f ms\n", o.pes,
                run.stats.total.ms());
    if (!o.statsJson.empty() &&
        !writeStatsOrWarn(o.statsJson, "pods", o.pes, run.stats.total.ms(),
                        run.stats.counters, run.stats.wallSeconds,
                        run.stats.events)) {
      return 1;
    }
    if (o.stats) {
      std::printf("EU utilization: %.1f%%\n",
                  100.0 * run.stats.avgUtilization(pods::sim::Unit::EU));
      for (const auto& [k, v] : run.stats.counters.all()) {
        std::printf("  %-28s %lld\n", k.c_str(), static_cast<long long>(v));
      }
    }
    out = std::move(run.out);
  } else if (o.engine == "seq") {
    pods::BaselineRun run = pods::runSequentialBaseline(c);
    if (!run.stats.ok) {
      std::fprintf(stderr, "podsc: run failed: %s\n", run.stats.error.c_str());
      return 1;
    }
    std::printf("engine=seq modeled time: %.3f ms\n", run.stats.total.ms());
    out = std::move(run.out);
  } else if (o.engine == "static") {
    pods::BaselineRun run = pods::runStaticBaseline(c, o.pes);
    if (!run.stats.ok) {
      std::fprintf(stderr, "podsc: run failed: %s\n", run.stats.error.c_str());
      return 1;
    }
    std::printf("engine=static pes=%d modeled time: %.3f ms\n", o.pes,
                run.stats.total.ms());
    out = std::move(run.out);
  } else {  // native
    pods::native::NativeConfig nc;
    nc.numWorkers = o.pes;
    nc.peWeights = o.peWeights;
    nc.pageElems = o.page;
    nc.faults = o.faults;
    nc.transport = o.transport;
    nc.store = o.store;
    nc.abort = &dog.abortFlag;
    pods::NativeRun run = pods::runNative(c, nc);
    if (!run.stats.ok) {
      std::fprintf(stderr, "podsc: run failed: %s\n", run.stats.error.c_str());
      if (dog.fired()) {
        std::fprintf(stderr, "counter snapshot at abort:\n");
        dumpCounters(run.stats.counters);
        for (std::size_t w = 0; w < run.stats.perWorker.size(); ++w) {
          const pods::Counters& pc = run.stats.perWorker[w];
          std::fprintf(
              stderr,
              "  worker %-2zu frames=%lld live=%lld tokensIn=%lld "
              "tokensOut=%lld idle=%lld\n",
              w, static_cast<long long>(pc.get("framesCreated")),
              static_cast<long long>(pc.get("framesLive")),
              static_cast<long long>(pc.get("tokensIn")),
              static_cast<long long>(pc.get("tokensOut")),
              static_cast<long long>(pc.get("idleTransitions")));
        }
      }
      return 1;
    }
    std::printf(
        "engine=native workers=%d transport=%s store=%s wall time: %.3f ms\n",
        o.pes, pods::native::transportKindName(o.transport),
        pods::native::storeKindName(o.store), run.stats.wallSeconds * 1e3);
    if (!o.statsJson.empty() &&
        !writeStatsOrWarn(o.statsJson, "native", o.pes,
                        run.stats.wallSeconds * 1e3, run.stats.counters,
                        run.stats.wallSeconds)) {
      return 1;
    }
    if (o.stats) {
      for (const auto& [k, v] : run.stats.counters.all()) {
        std::printf("  %-28s %lld\n", k.c_str(), static_cast<long long>(v));
      }
      for (std::size_t w = 0; w < run.stats.perWorker.size(); ++w) {
        const pods::Counters& c = run.stats.perWorker[w];
        std::printf("  worker %-2zu frames=%lld peak=%lld reused=%lld "
                    "tokensIn=%lld tokensOut=%lld idle=%lld\n",
                    w, static_cast<long long>(c.get("framesCreated")),
                    static_cast<long long>(c.get("framesPeak")),
                    static_cast<long long>(c.get("framesReused")),
                    static_cast<long long>(c.get("tokensIn")),
                    static_cast<long long>(c.get("tokensOut")),
                    static_cast<long long>(c.get("idleTransitions")));
      }
    }
    out = std::move(run.out);
  }

  printOutputs(out);

  if (o.verify) {
    pods::BaselineRun seq = pods::runSequentialBaseline(c);
    if (!seq.stats.ok) {
      std::fprintf(stderr, "podsc: verify run failed: %s\n",
                   seq.stats.error.c_str());
      return 1;
    }
    std::string why;
    if (!pods::sameOutputs(out, seq.out, &why)) {
      std::fprintf(stderr, "podsc: VERIFY FAILED: %s\n", why.c_str());
      return 1;
    }
    std::printf("verify: identical to the sequential engine\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Multi-process mode: when this process is a forked PE worker
  // (--transport=udp-multiproc supervisor exec'd us with --pods-worker=...),
  // hand the process over before any tool setup. Never returns in that case.
  pods::native::procmgr::maybeRunPodsWorker(argc, argv);
  Options o;
  if (!parseArgs(argc, argv, o)) return usage(argv[0]);
  if (o.faults.enabled() && (o.engine == "seq" || o.engine == "static")) {
    std::fprintf(stderr,
                 "podsc: --faults needs a message-passing engine "
                 "(--engine=pods or --engine=native)\n");
    return 2;
  }
  if (o.transportSet && o.engine != "native") {
    std::fprintf(stderr,
                 "podsc: --transport applies to the native engine only "
                 "(--engine=native)\n");
    return 2;
  }
  if (o.storeSet && o.engine != "native") {
    std::fprintf(stderr,
                 "podsc: --store applies to the native engine only "
                 "(--engine=native)\n");
    return 2;
  }
  if (!o.peWeights.empty()) {
    if (o.engine != "pods" && o.engine != "native") {
      std::fprintf(stderr,
                   "podsc: --pe-weights needs a distributed engine "
                   "(--engine=pods or --engine=native)\n");
      return 2;
    }
    if (static_cast<int>(o.peWeights.size()) != o.pes) {
      std::fprintf(stderr,
                   "podsc: --pe-weights wants exactly one weight per PE "
                   "(%d weights for --pes %d)\n",
                   static_cast<int>(o.peWeights.size()), o.pes);
      return 2;
    }
  }
  if (!o.statsJson.empty() && o.engine != "pods" && o.engine != "native") {
    std::fprintf(stderr,
                 "podsc: --stats-json needs a machine engine "
                 "(--engine=pods or --engine=native)\n");
    return 2;
  }

  Watchdog dog;
  dog.arm(o.timeoutSec);
  int rc = runTool(o, dog);
  dog.disarm();
  if (dog.fired()) rc = 124;
  return rc;
}
