# The podsc command-line tool, plus ctest smoke runs over the sample
# programs in programs/ (every engine, with result verification).
add_executable(podsc ${CMAKE_SOURCE_DIR}/tools/podsc.cpp)
target_link_libraries(podsc PRIVATE pods)

add_test(NAME podsc_heat
         COMMAND podsc --pes 5 --verify ${CMAKE_SOURCE_DIR}/programs/heat.idl)
add_test(NAME podsc_dotprod_stats
         COMMAND podsc --pes 4 --stats --verify
                 ${CMAKE_SOURCE_DIR}/programs/dotprod.idl)
add_test(NAME podsc_pascal_static
         COMMAND podsc --engine=static --pes 3 --verify
                 ${CMAKE_SOURCE_DIR}/programs/pascal.idl)
add_test(NAME podsc_quadrature_native
         COMMAND podsc --engine=native --pes 4 --verify
                 ${CMAKE_SOURCE_DIR}/programs/quadrature.idl)
add_test(NAME podsc_dumps
         COMMAND podsc --engine=seq --dump-plan --dump-graph --dump-sps
                 --dump-dot --verify ${CMAKE_SOURCE_DIR}/programs/pascal.idl)
add_test(NAME podsc_ablation
         COMMAND podsc --pes 6 --block-range --page 8 --no-cache --verify
                 ${CMAKE_SOURCE_DIR}/programs/heat.idl)

# The serving daemon and its client (docs/ARCHITECTURE.md, "Serving
# daemon"). End-to-end coverage lives in tests/test_serve.cpp (in-process
# daemon + client over a Unix socket) and scripts/daemon_soak.py (real
# processes, N concurrent clients); the smoke below drives the real
# binaries once.
add_executable(podsd ${CMAKE_SOURCE_DIR}/tools/podsd.cpp)
target_link_libraries(podsd PRIVATE pods)
add_executable(podsd_client ${CMAKE_SOURCE_DIR}/tools/podsd_client.cpp)
target_link_libraries(podsd_client PRIVATE pods)

find_package(Python3 COMPONENTS Interpreter)
if(Python3_Interpreter_FOUND)
  add_test(NAME podsd_smoke
           COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/scripts/daemon_soak.py
                   --build-dir ${CMAKE_BINARY_DIR} --duration 3 --clients 2
                   --repeat 2)
  set_tests_properties(podsd_smoke PROPERTIES TIMEOUT 120)
endif()

# Fault injection end-to-end: lossy network, ack/retransmit recovery, still
# bit-identical to the sequential engine — on both engines, under a watchdog
# so a delivery bug fails fast instead of wedging ctest.
add_test(NAME podsc_heat_faulty_sim
         COMMAND podsc --pes 5 --faults=drop:0.02,dup:0.01,delay:0.02
                 --fault-seed 7 --timeout 120 --stats --verify
                 ${CMAKE_SOURCE_DIR}/programs/heat.idl)
add_test(NAME podsc_heat_faulty_native
         COMMAND podsc --engine=native --pes 4
                 --faults=drop:0.02,dup:0.01,delay:0.02,stall:0.01
                 --fault-seed 11 --timeout 120 --stats --verify
                 ${CMAKE_SOURCE_DIR}/programs/heat.idl)
set_tests_properties(podsc_heat_faulty_sim podsc_heat_faulty_native
                     PROPERTIES TIMEOUT 180)

# Multi-process end-to-end: podsc as supervisor, one forked worker process
# per PE over the UDP loopback wire, a seeded mid-run SIGKILL of PE 2 and a
# supervised respawn + log replay — the answer must still verify against
# the sequential engine (the recovery analogue of the faulty-native smoke).
add_test(NAME podsc_heat_multiproc_kill
         COMMAND podsc --engine=native --transport=udp-multiproc --pes 4
                 --faults=kill:2@4000 --timeout 120 --stats --verify
                 ${CMAKE_SOURCE_DIR}/programs/heat.idl)
set_tests_properties(podsc_heat_multiproc_kill PROPERTIES TIMEOUT 180)
