// podsd_client — submit IdLite programs to a running podsd.
//
// Usage:
//   podsd_client (--socket=PATH | --tcp=PORT) [options] file.idl...
//
// Options:
//   --repeat N        submit each program N times (default: 1); results of
//                     every repetition must be bit-identical — any
//                     divergence (cross-job bleed) exits 1
//   --by-hash         after the first source submit of a file, resubmit by
//                     the cached compiled handle (CacheRef)
//   --timeout-ms N    per-job deadline enforced by the daemon
//   --verify-seq      also compile locally and require bit-identical output
//                     vs the sequential engine (once per file)
//   --garbage[=N]     protocol-abuse mode: send N malformed frames
//                     (default 4) instead of jobs; expects the daemon to
//                     close the connection and stay alive
//   --stats-json=FILE write the last job's counters (job.<id>.* namespace)
//   --quiet           suppress per-result output
//
// Busy replies are retried with a small backoff (the admission queue is
// bounded by design); the retry count is reported at exit.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pods.hpp"
#include "serve/client.hpp"
#include "serve/serve.hpp"
#include "support/stats.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket=PATH | --tcp=PORT) [--repeat N] "
               "[--by-hash] [--timeout-ms N] [--verify-seq] [--garbage[=N]] "
               "[--stats-json=FILE] [--quiet] file.idl...\n",
               argv0);
  return 2;
}

struct Options {
  std::string unixPath;
  int tcpPort = -1;
  int repeat = 1;
  bool byHash = false;
  int timeoutMs = 0;
  bool verifySeq = false;
  int garbage = 0;
  std::string statsJson;
  bool quiet = false;
  std::vector<std::string> files;
};

bool intAfter(const std::string& a, const char* prefix, int min, int& out) {
  const std::string v = a.substr(std::strlen(prefix));
  char* end = nullptr;
  const long x = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || x < min) return false;
  out = static_cast<int>(x);
  return true;
}

bool connect(pods::serve::Client& cli, const Options& o, std::string* err) {
  if (!o.unixPath.empty()) return cli.connectUnix(o.unixPath, err);
  return cli.connectTcp(static_cast<std::uint16_t>(o.tcpPort), err);
}

/// Sends malformed frames until the daemon (correctly) drops us, then
/// proves the daemon still serves by completing a fresh handshake.
int runGarbage(const Options& o) {
  for (int round = 0; round < o.garbage; ++round) {
    pods::serve::Client cli;
    std::string err;
    if (!connect(cli, o, &err)) {
      std::fprintf(stderr, "podsd_client: %s\n", err.c_str());
      return 1;
    }
    switch (round % 4) {
      case 0: {  // corrupt header: out-of-range tag
        const std::uint8_t wire[] = {4, 0, 0, 0, 99, 1, 2, 3, 4};
        cli.sendRaw(wire, sizeof(wire));
        break;
      }
      case 1: {  // over-limit length
        const std::uint8_t wire[] = {0xFF, 0xFF, 0xFF, 0xFF, 1};
        cli.sendRaw(wire, sizeof(wire));
        break;
      }
      case 2: {  // well-framed Hello with the wrong magic
        std::vector<std::uint8_t> payload, wire;
        pods::proto::ctl::HelloMsg bad;
        bad.magic = 0xDEADBEEF;
        pods::proto::ctl::encodeHello(bad, payload);
        pods::proto::ctl::encodeFrame(pods::proto::ctl::FrameTag::Hello,
                                      payload, wire);
        cli.sendRaw(wire.data(), wire.size());
        break;
      }
      default: {  // truncated Submit payload under a valid header
        const std::uint8_t wire[] = {3, 0, 0, 0, 17, 0xAA, 0xBB, 0xCC};
        cli.sendRaw(wire, sizeof(wire));
        break;
      }
    }
    // The daemon answers Error and closes; handshake must now fail.
    pods::proto::ctl::WelcomeMsg w;
    if (cli.handshake(&w, &err)) {
      std::fprintf(stderr,
                   "podsd_client: daemon accepted a handshake after garbage "
                   "(connection should be closed)\n");
      return 1;
    }
  }
  // Daemon must still be alive for well-behaved clients.
  pods::serve::Client cli;
  std::string err;
  pods::proto::ctl::WelcomeMsg w;
  if (!connect(cli, o, &err) || !cli.handshake(&w, &err)) {
    std::fprintf(stderr, "podsd_client: daemon down after garbage: %s\n",
                 err.c_str());
    return 1;
  }
  if (!o.quiet)
    std::printf("garbage: %d malformed frames rejected, daemon alive\n",
                o.garbage);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--socket=", 0) == 0) {
      o.unixPath = a.substr(9);
    } else if (a.rfind("--tcp=", 0) == 0) {
      if (!intAfter(a, "--tcp=", 0, o.tcpPort)) return usage(argv[0]);
    } else if (a.rfind("--repeat=", 0) == 0) {
      if (!intAfter(a, "--repeat=", 1, o.repeat)) return usage(argv[0]);
    } else if (a == "--by-hash") {
      o.byHash = true;
    } else if (a.rfind("--timeout-ms=", 0) == 0) {
      if (!intAfter(a, "--timeout-ms=", 1, o.timeoutMs)) return usage(argv[0]);
    } else if (a == "--verify-seq") {
      o.verifySeq = true;
    } else if (a == "--garbage") {
      o.garbage = 4;
    } else if (a.rfind("--garbage=", 0) == 0) {
      if (!intAfter(a, "--garbage=", 1, o.garbage)) return usage(argv[0]);
    } else if (a.rfind("--stats-json=", 0) == 0) {
      o.statsJson = a.substr(13);
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (!a.empty() && a[0] == '-') {
      return usage(argv[0]);
    } else {
      o.files.push_back(a);
    }
  }
  if (o.unixPath.empty() && o.tcpPort < 0) return usage(argv[0]);
  if (o.garbage > 0) return runGarbage(o);
  if (o.files.empty()) return usage(argv[0]);

  pods::serve::Client cli;
  std::string err;
  if (!connect(cli, o, &err)) {
    std::fprintf(stderr, "podsd_client: %s\n", err.c_str());
    return 1;
  }
  pods::proto::ctl::WelcomeMsg welcome;
  if (!cli.handshake(&welcome, &err)) {
    std::fprintf(stderr, "podsd_client: %s\n", err.c_str());
    return 1;
  }

  long long busyRetries = 0, cacheHits = 0, jobs = 0;
  pods::Counters lastJob;
  double lastWallMs = 0.0;
  for (const std::string& file : o.files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "podsd_client: cannot open '%s'\n", file.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();

    pods::ProgramOutputs reference;
    bool haveReference = false;
    if (o.verifySeq) {
      pods::CompileResult cr = pods::compile(source);
      if (!cr.ok) {
        std::fprintf(stderr, "podsd_client: local compile of '%s' failed:\n%s",
                     file.c_str(), cr.diagnostics.c_str());
        return 1;
      }
      pods::BaselineRun seq = pods::runSequentialBaseline(*cr.compiled);
      if (!seq.stats.ok) {
        std::fprintf(stderr, "podsd_client: sequential run failed: %s\n",
                     seq.stats.error.c_str());
        return 1;
      }
      reference = std::move(seq.out);
      haveReference = true;
    }

    bool haveHandle = false;
    std::uint64_t handle = 0;
    pods::ProgramOutputs first;
    bool haveFirst = false;
    for (int rep = 0; rep < o.repeat; ++rep) {
      pods::serve::Client::Reply reply;
      for (;;) {
        const bool sent =
            (o.byHash && haveHandle)
                ? cli.submitHash(handle,
                                 static_cast<std::uint32_t>(o.timeoutMs),
                                 &reply, &err)
                : cli.submitSource(source,
                                   static_cast<std::uint32_t>(o.timeoutMs),
                                   &reply, &err);
        if (!sent) {
          std::fprintf(stderr, "podsd_client: %s\n", err.c_str());
          return 1;
        }
        if (!reply.busy) break;
        ++busyRetries;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      const auto& r = reply.result;
      if (r.ok == 0) {
        std::fprintf(stderr, "podsd_client: job %u failed: %s\n", r.jobId,
                     r.error.c_str());
        return 1;
      }
      ++jobs;
      if (r.cacheHit != 0) ++cacheHits;
      handle = r.sourceHash;
      haveHandle = true;
      lastWallMs = r.wallMs;
      lastJob = pods::Counters();
      for (const auto& [k, v] : r.counters) lastJob.add(k, v);

      const pods::ProgramOutputs out = pods::serve::Client::toOutputs(r);
      std::string why;
      if (haveReference && !pods::sameOutputs(out, reference, &why)) {
        std::fprintf(stderr,
                     "podsd_client: '%s' diverged from the sequential "
                     "engine: %s\n",
                     file.c_str(), why.c_str());
        return 1;
      }
      if (!haveFirst) {
        first = out;
        haveFirst = true;
      } else if (!pods::sameOutputs(out, first, &why)) {
        std::fprintf(stderr,
                     "podsd_client: '%s' rep %d diverged from rep 0 "
                     "(cross-job bleed?): %s\n",
                     file.c_str(), rep, why.c_str());
        return 1;
      }
      if (!o.quiet) {
        std::printf("%s job=%u cacheHit=%d wall=%.3fms results=%zu\n",
                    file.c_str(), r.jobId, int(r.cacheHit), r.wallMs,
                    r.results.size());
      }
    }
  }

  if (!o.statsJson.empty() &&
      !pods::writeStatsJson(o.statsJson, "serve-job", welcome.pes, lastWallMs,
                            lastJob)) {
    std::fprintf(stderr, "podsd_client: cannot write '%s'\n",
                 o.statsJson.c_str());
    return 1;
  }
  if (!o.quiet) {
    std::printf("done: %lld jobs, %lld cache hits, %lld busy retries\n", jobs,
                cacheHits, busyRetries);
  }
  return 0;
}
