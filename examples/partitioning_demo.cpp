// Example: array partitioning, ownership, and Range Filters made visible.
//
// Recreates the paper's Figures 4 and 6 for a 6x256 array over 4 PEs —
// page-to-PE assignment and the first-element-of-row iteration ownership —
// then shows the i-dependent column ranges of Figure 5, and finally dumps a
// real program's dataflow graph (Figure 2) and distribution plan.
//
//   ./build/examples/partitioning_demo
#include <cstdio>

#include "core/pods.hpp"
#include "ir/dot.hpp"
#include "runtime/array_layout.hpp"
#include "workloads/kernels.hpp"

using namespace pods;

namespace {

void figure4And6() {
  std::printf("=== Figure 4: partitioning a 6x256 array over 4 PEs ===\n");
  ArrayLayout l({2, 6, 256}, 4, 32);
  std::printf("%lld elements -> %lld pages of %d elements, %lld pages per PE\n\n",
              (long long)l.shape().numElems(), (long long)l.numPages(),
              l.pageElems(), (long long)l.pageSegment(0).size());
  // Page map: one digit per page, rows of 8 pages (256 elems per row).
  for (std::int64_t row = 0; row < 6; ++row) {
    std::printf("  row %lld: ", (long long)row);
    for (std::int64_t j = 0; j < 256; j += 32) {
      std::printf("%d ", l.ownerOfOffset(row * 256 + j) + 1);
    }
    std::printf("\n");
  }

  std::printf("\n=== Figure 6: index-space (row) ownership ===\n");
  for (int pe = 0; pe < 4; ++pe) {
    IdxRange rows = l.ownedRows(pe);
    std::printf("  PE%d is responsible for rows %lld..%lld\n", pe + 1,
                (long long)rows.lo, (long long)rows.hi);
  }
  std::printf(
      "  (PE1 computes all of rows 0-1 even though half of row 1 lives on\n"
      "   PE2 — those writes travel; PE2 computes only row 2.)\n");

  std::printf("\n=== Figure 5: i-dependent column Range-Filter bounds ===\n");
  for (std::int64_t i = 0; i < 3; ++i) {
    std::printf("  row i=%lld:", (long long)i);
    for (int pe = 0; pe < 4; ++pe) {
      IdxRange c = l.ownedColsOfRow(pe, i);
      if (c.empty()) {
        std::printf("  PE%d: -", pe + 1);
      } else {
        std::printf("  PE%d: j=%lld..%lld", pe + 1, (long long)c.lo,
                    (long long)c.hi);
      }
    }
    std::printf("\n");
  }
}

void figure2() {
  std::printf("\n=== Figure 2: the dataflow graph of the fill program ===\n");
  CompileResult cr = compile(workloads::fill2dSource(50, 10));
  if (!cr.ok) {
    std::fprintf(stderr, "%s", cr.diagnostics.c_str());
    return;
  }
  std::printf("\n-- block tree --\n%s",
              ir::dumpFunction(cr.compiled->graph.main()).c_str());
  std::printf("\n-- distribution plan --\n%s",
              cr.compiled->plan.describe(cr.compiled->graph).c_str());
  std::printf("\n-- translated SPs (one per code block) --\n");
  for (const SpCode& sp : cr.compiled->program.sps) {
    std::printf("  SP%u '%s': %zu instrs, %u slots%s\n", sp.id, sp.name.c_str(),
                sp.code.size(), sp.numSlots,
                sp.replicated ? "  [replicated via LD + Range Filter]" : "");
  }
  std::printf(
      "\nGraphviz of the dataflow graph (pipe to `dot -Tpng`):\n%zu bytes "
      "(printing first lines)\n",
      ir::toDot(cr.compiled->graph.main()).size());
  std::string dot = ir::toDot(cr.compiled->graph.main());
  std::printf("%.400s...\n", dot.c_str());
}

}  // namespace

int main() {
  figure4And6();
  figure2();
  return 0;
}
