// Quickstart: compile an IdLite program, run it on the simulated PODS
// machine at several PE counts, and print timing + unit utilization.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/pods.hpp"
#include "support/table.hpp"
#include "workloads/kernels.hpp"

int main() {
  // The paper's Figure-2 program: fill a matrix element-wise.
  const std::string source = pods::workloads::fill2dSource(50, 10);
  std::printf("IdLite source:\n%s\n", source.c_str());

  pods::CompileResult cr = pods::compile(source);
  if (!cr.ok) {
    std::fprintf(stderr, "compile failed:\n%s", cr.diagnostics.c_str());
    return 1;
  }
  std::printf("compiled into %zu Subcompact Processes (%zu instructions)\n\n",
              cr.compiled->program.sps.size(),
              cr.compiled->program.totalInstrs());
  std::printf("distribution plan:\n%s\n",
              cr.compiled->plan.describe(cr.compiled->graph).c_str());

  // Sequential reference (conventional-code cost model).
  pods::BaselineRun seq = pods::runSequentialBaseline(*cr.compiled);
  if (!seq.stats.ok) {
    std::fprintf(stderr, "sequential run failed: %s\n", seq.stats.error.c_str());
    return 1;
  }
  std::printf("sequential reference: %.3f ms\n\n", seq.stats.total.ms());

  pods::TextTable table({"PEs", "time (ms)", "speedup", "EU util %", "ok"});
  double base = 0.0;
  for (int pes : {1, 2, 4, 8, 16, 32}) {
    pods::sim::MachineConfig mc;
    mc.numPEs = pes;
    pods::PodsRun run = pods::runPods(*cr.compiled, mc);
    if (!run.stats.ok) {
      std::fprintf(stderr, "PEs=%d failed: %s\n", pes, run.stats.error.c_str());
      return 1;
    }
    std::string why;
    if (!pods::sameOutputs(run.out, seq.out, &why)) {
      std::fprintf(stderr, "PEs=%d wrong result: %s\n", pes, why.c_str());
      return 1;
    }
    if (pes == 1) base = run.stats.total.ms();
    table.row()
        .cell(static_cast<std::int64_t>(pes))
        .cell(run.stats.total.ms(), 3)
        .cell(base / run.stats.total.ms(), 2)
        .cell(100.0 * run.stats.avgUtilization(pods::sim::Unit::EU), 1)
        .cell("yes");
  }
  table.print();
  return 0;
}
