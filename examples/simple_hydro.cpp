// Example: the SIMPLE hydrodynamics + heat-conduction benchmark.
//
// Runs the paper's headline workload end to end: compiles the declarative
// source, shows the Partitioner's plan (which loop levels replicate, which
// Range Filters they get), advances the simulation, and prints physics
// output plus machine statistics.
//
//   ./build/examples/simple_hydro [n] [steps] [pes]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/pods.hpp"
#include "support/table.hpp"
#include "workloads/simple.hpp"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 32;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 2;
  const int pes = argc > 3 ? std::atoi(argv[3]) : 16;
  if (n < 4 || n > 128 || steps < 1 || pes < 1 || pes > 512) {
    std::fprintf(stderr, "usage: %s [n] [steps] [pes]\n", argv[0]);
    return 1;
  }

  pods::CompileResult cr =
      pods::compile(pods::workloads::simpleSource(n, steps));
  if (!cr.ok) {
    std::fprintf(stderr, "%s", cr.diagnostics.c_str());
    return 1;
  }
  std::printf("SIMPLE %dx%d, %d step(s) — %zu SPs, %zu instructions\n\n", n, n,
              steps, cr.compiled->program.sps.size(),
              cr.compiled->program.totalInstrs());
  std::printf("Partitioner plan:\n%s\n",
              cr.compiled->plan.describe(cr.compiled->graph).c_str());

  pods::sim::MachineConfig mc;
  mc.numPEs = pes;
  pods::PodsRun run = pods::runPods(*cr.compiled, mc);
  if (!run.stats.ok) {
    std::fprintf(stderr, "run failed: %s\n", run.stats.error.c_str());
    return 1;
  }

  // Cross-check against the sequential evaluator.
  pods::BaselineRun seq = pods::runSequentialBaseline(*cr.compiled);
  std::string why;
  const bool verified = pods::sameOutputs(run.out, seq.out, &why);

  // Physics summary of the final energy field.
  const auto& e = *run.out.arrays[0];
  double mn = 1e300, mx = -1e300, sum = 0.0;
  for (const pods::Value& v : e.elems) {
    double x = v.asReal();
    mn = std::min(mn, x);
    mx = std::max(mx, x);
    sum += x;
  }
  std::printf("final energy field: min=%.6f max=%.6f mean=%.6f  finite=%s\n",
              mn, mx, sum / static_cast<double>(e.elems.size()),
              std::isfinite(sum) ? "yes" : "NO");
  std::printf("verified against sequential evaluator: %s%s\n\n",
              verified ? "identical" : "MISMATCH: ", verified ? "" : why.c_str());

  pods::TextTable table({"metric", "value"});
  table.row().cell("simulated time (ms)").cell(run.stats.total.ms(), 2);
  table.row().cell("sequential model (ms)").cell(seq.stats.total.ms(), 2);
  table.row()
      .cell("speedup vs sequential")
      .cell(seq.stats.total.ms() / run.stats.total.ms(), 2);
  table.row()
      .cell("EU utilization %")
      .cell(100.0 * run.stats.avgUtilization(pods::sim::Unit::EU), 1);
  table.row()
      .cell("SPs instantiated")
      .cell(run.stats.counters.get("sp.instantiated"));
  table.row().cell("tokens sent").cell(run.stats.counters.get("tokens.sent"));
  table.row()
      .cell("remote reads")
      .cell(run.stats.counters.get("array.reads.remote"));
  table.row()
      .cell("pages shipped")
      .cell(run.stats.counters.get("array.pagesSent"));
  table.row()
      .cell("context switches")
      .cell(run.stats.counters.get("eu.contextSwitches"));
  table.print();

  // Where does Execution Unit time go? (machine-built-in profiler)
  std::vector<const pods::sim::SpProfile*> byTime;
  for (const auto& p : run.stats.spProfiles) {
    if (p.instances > 0) byTime.push_back(&p);
  }
  std::sort(byTime.begin(), byTime.end(),
            [](const pods::sim::SpProfile* a, const pods::sim::SpProfile* b) {
              return a->euTime.ns > b->euTime.ns;
            });
  std::printf("\nTop SPs by Execution Unit time:\n");
  pods::TextTable prof({"SP", "instances", "instructions", "EU time (ms)"});
  for (std::size_t i = 0; i < byTime.size() && i < 8; ++i) {
    prof.row()
        .cell(byTime[i]->name)
        .cell(byTime[i]->instances)
        .cell(byTime[i]->instructions)
        .cell(byTime[i]->euTime.ms(), 2);
  }
  prof.print();
  return verified ? 0 : 1;
}
