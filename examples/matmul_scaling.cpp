// Example: dense matrix multiply scaling across PE counts.
//
// Compiles the matmul workload once, verifies the product against the
// sequential evaluator, and reports how iteration-level parallelism scales
// when the inner dot product is a carried (sequential) loop.
//
//   ./build/examples/matmul_scaling [n]
#include <cstdio>
#include <cstdlib>

#include "core/pods.hpp"
#include "support/table.hpp"
#include "workloads/kernels.hpp"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 24;
  if (n < 2 || n > 128) {
    std::fprintf(stderr, "usage: %s [n in 2..128]\n", argv[0]);
    return 1;
  }
  pods::CompileResult cr = pods::compile(pods::workloads::matmulSource(n));
  if (!cr.ok) {
    std::fprintf(stderr, "%s", cr.diagnostics.c_str());
    return 1;
  }
  std::printf("C = A * B, %dx%d (inner dot products stay sequential: LCD)\n\n",
              n, n);

  pods::BaselineRun seq = pods::runSequentialBaseline(*cr.compiled);
  if (!seq.stats.ok) {
    std::fprintf(stderr, "sequential failed: %s\n", seq.stats.error.c_str());
    return 1;
  }

  pods::TextTable table(
      {"PEs", "time (ms)", "speedup", "EU %", "remote reads", "verified"});
  double base = 0.0;
  for (int pes : {1, 2, 4, 8, 16, 32}) {
    pods::sim::MachineConfig mc;
    mc.numPEs = pes;
    pods::PodsRun run = pods::runPods(*cr.compiled, mc);
    if (!run.stats.ok) {
      std::fprintf(stderr, "PEs=%d: %s\n", pes, run.stats.error.c_str());
      return 1;
    }
    std::string why;
    bool same = pods::sameOutputs(run.out, seq.out, &why);
    if (!same) std::fprintf(stderr, "PEs=%d: %s\n", pes, why.c_str());
    if (pes == 1) base = run.stats.total.ms();
    table.row()
        .cell(std::int64_t{pes})
        .cell(run.stats.total.ms(), 2)
        .cell(base / run.stats.total.ms(), 2)
        .cell(100.0 * run.stats.avgUtilization(pods::sim::Unit::EU), 1)
        .cell(run.stats.counters.get("array.reads.remote"))
        .cell(same ? "yes" : "NO");
  }
  table.print();

  // Show a corner of the product.
  const auto& c = *seq.out.arrays[0];
  std::printf("\nC[0,0]=%.3f  C[%d,%d]=%.3f\n", c.elems[0].asReal(), n - 1,
              n - 1, c.elems[static_cast<std::size_t>(n * n - 1)].asReal());
  return 0;
}
