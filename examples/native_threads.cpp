// Example: the native threaded runtime.
//
// The simulator reproduces the paper's measurements; this example runs the
// *same* translated Subcompact Processes on real host threads — the modern
// stand-in for the iPSC/2 nodes the authors targeted — and shows that
// single assignment makes the results independent of thread interleaving
// while wall-clock time scales with worker count.
//
//   ./build/examples/native_threads [n] [steps]
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/pods.hpp"
#include "support/table.hpp"
#include "workloads/simple.hpp"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 48;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 3;
  if (n < 4 || n > 256 || steps < 1) {
    std::fprintf(stderr, "usage: %s [n] [steps]\n", argv[0]);
    return 1;
  }
  pods::CompileResult cr =
      pods::compile(pods::workloads::simpleSource(n, steps));
  if (!cr.ok) {
    std::fprintf(stderr, "%s", cr.diagnostics.c_str());
    return 1;
  }
  std::printf("SIMPLE %dx%d x %d steps on real threads (host has %u cores)\n\n",
              n, n, steps, std::thread::hardware_concurrency());

  pods::BaselineRun seq = pods::runSequentialBaseline(*cr.compiled);
  if (!seq.stats.ok) {
    std::fprintf(stderr, "sequential failed: %s\n", seq.stats.error.c_str());
    return 1;
  }

  pods::TextTable table(
      {"workers", "wall (ms)", "speedup", "frames", "tokens", "identical"});
  double base = 0.0;
  // Sweep to at least 4 workers even on small hosts: oversubscription still
  // demonstrates interleaving-independence (speedup then needs real cores).
  int maxWorkers = static_cast<int>(std::thread::hardware_concurrency());
  if (maxWorkers < 4) maxWorkers = 4;
  for (int workers = 1; workers <= maxWorkers; workers *= 2) {
    pods::native::NativeConfig nc;
    nc.numWorkers = workers;
    pods::NativeRun run = pods::runNative(*cr.compiled, nc);
    if (!run.stats.ok) {
      std::fprintf(stderr, "workers=%d: %s\n", workers,
                   run.stats.error.c_str());
      return 1;
    }
    std::string why;
    bool same = pods::sameOutputs(run.out, seq.out, &why);
    if (!same) std::fprintf(stderr, "workers=%d: %s\n", workers, why.c_str());
    double ms = run.stats.wallSeconds * 1e3;
    if (workers == 1) base = ms;
    table.row()
        .cell(std::int64_t{workers})
        .cell(ms, 1)
        .cell(base / ms, 2)
        .cell(run.stats.counters.get("native.frames"))
        .cell(run.stats.counters.get("native.tokens"))
        .cell(same ? "yes" : "NO");
  }
  table.print();
  std::printf(
      "\n(Wall-clock times vary run to run; the *results* never do — that\n"
      "is the Church-Rosser determinacy the paper's model guarantees.)\n");
  return 0;
}
